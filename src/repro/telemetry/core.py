"""Core tracing + metrics state: spans, counters, gauges, histograms, sinks.

Everything here is stdlib-only and import-light on purpose: every hot module
in the repo (executors, the stream pipeline, ledger backends, the cluster
coordinator) imports :mod:`repro.telemetry`, so this module must never import
back into them.

Design constraints, in order of importance:

1. **Disabled mode is near-free.**  The default spec is ``"off"``; in that
   state ``counter``/``gauge``/``histogram`` are a dict lookup and an early
   return, and ``span`` allocates one small handle that still measures its
   own elapsed time (callers like :class:`repro.audit.api.Verifier` read
   ``elapsed_seconds`` off the handle whether or not telemetry records it)
   but touches no shared state — not even the context variable.
2. **Correct lineage under any scheduler.**  Span parenting rides the
   :class:`~contextvars.ContextVar` in :mod:`repro.telemetry.context`, so
   two asyncio coroutines interleaving on one thread keep distinct parent
   chains (a thread-local stack cannot do that), while plain threads still
   start clean.  Span IDs embed the emitting PID, so IDs minted on either
   side of a ``fork()`` never collide.
3. **Crash-safe JSONL.**  The ``jsonl:`` sink appends one complete line per
   event with a single unbuffered ``write()`` on an ``O_APPEND`` descriptor,
   so concurrent writers (threads, forked pool workers, spawned cluster
   workers) interleave *lines*, never bytes within a line.
4. **Children re-attach via the environment.**  ``configure()`` exports
   ``REPRO_TELEMETRY``; any subprocess that imports this module lazily
   resolves the same spec on first use — the same propagation path
   ``REPRO_PRECOMPUTE_CACHE`` uses to reach pool and cluster workers.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.context import (
    TraceContext,
    attach,
    current_context,
    detach,
    new_trace,
)

TELEMETRY_ENV = "REPRO_TELEMETRY"
SPEC_OFF = "off"

# Label sets are stored canonically as sorted (key, value) tuples so that
# {"a": 1, "b": 2} and {"b": 2, "a": 1} aggregate into the same series.
LabelKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelKey]

#: Cumulative histogram bucket upper bounds (seconds-flavoured; counts land
#: in the overflow).  Fixed and global so bucket arrays from any process
#: merge element-wise without negotiation.
HISTOGRAM_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    60.0,
)

_SPAN_IDS = itertools.count(1)

# In-flight span registry for the ops plane (`GET /v1/debug/spans`).  Keyed
# by span_id; entries live from __enter__ to __exit__ of recorded spans.
_ACTIVE_SPANS: Dict[str, "SpanHandle"] = {}
_ACTIVE_LOCK = threading.Lock()


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _new_span_id() -> str:
    """A fleet-unique 16-hex span ID: PID-prefixed monotonic counter.

    The counter is plain :mod:`itertools` (no lock needed — ``next`` on a
    count is atomic under the GIL); uniqueness across ``fork()`` children
    that inherit the counter position comes from the PID prefix.  The fixed
    16-hex shape keeps the ID valid as a W3C ``traceparent`` parent-id.
    """
    return "%08x%08x" % (os.getpid() & 0xFFFFFFFF, next(_SPAN_IDS) & 0xFFFFFFFF)


def _bucket_index(value: float) -> int:
    for index, bound in enumerate(HISTOGRAM_BUCKETS):
        if value <= bound:
            return index
    return len(HISTOGRAM_BUCKETS)


def active_spans() -> List[Dict[str, Any]]:
    """Snapshot of every span currently open in this process."""
    now = time.perf_counter()
    with _ACTIVE_LOCK:
        handles = list(_ACTIVE_SPANS.values())
    report = []
    for handle in handles:
        report.append(
            {
                "name": handle.name,
                "span_id": handle.span_id,
                "parent_id": handle.parent_id,
                "trace_id": handle.trace_id,
                "pid": os.getpid(),
                "elapsed_seconds": max(0.0, now - handle.start),
                "attrs": {key: _jsonable(value) for key, value in handle.attrs.items()},
            }
        )
    report.sort(key=lambda entry: -float(entry["elapsed_seconds"]))
    return report


class SpanHandle:
    """One timed region.  Context manager; nests via the trace context.

    Always measures (``elapsed_seconds`` is valid even when telemetry is
    off — callers may surface it in their own reports); only *records* to
    the active sink when a :class:`Telemetry` is attached **and** the trace
    is sampled (errors are always recorded regardless of sampling).
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "trace_id",
        "sampled",
        "start",
        "end",
        "wall",
        "_telemetry",
        "_token",
    )

    def __init__(
        self, name: str, attrs: Dict[str, Any], telemetry: Optional["Telemetry"]
    ) -> None:
        self.name = name
        self.attrs = attrs
        self._telemetry = telemetry
        self.span_id = _new_span_id() if telemetry is not None else ""
        self.parent_id: Optional[str] = None
        self.trace_id = ""
        self.sampled = True
        self.start = 0.0
        self.end = 0.0
        self.wall = 0.0
        self._token: Any = None

    @property
    def elapsed_seconds(self) -> float:
        if self.end:
            return self.end - self.start
        return time.perf_counter() - self.start

    def __enter__(self) -> "SpanHandle":
        if self._telemetry is not None:
            context = current_context()
            if context is None:
                context = new_trace()
            self.trace_id = context.trace_id
            self.sampled = context.sampled
            self.parent_id = context.span_id or None
            self._token = attach(context.child(self.span_id))
            # Wall clock is trace *metadata* (cross-process waterfall
            # alignment), never tally state.
            self.wall = time.time()  # repro: noqa[REP002] - trace timestamp
            with _ACTIVE_LOCK:
                _ACTIVE_SPANS[self.span_id] = self
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.end = time.perf_counter()
        telemetry = self._telemetry
        if telemetry is not None:
            with _ACTIVE_LOCK:
                _ACTIVE_SPANS.pop(self.span_id, None)
            if self._token is not None:
                detach(self._token)
                self._token = None
            if exc_type is not None:
                self.attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
            if self.sampled or exc_type is not None:
                telemetry.record_span(self)


class MemSink:
    """In-process event buffer: the ``"mem"`` spec and the cluster workers."""

    kind = "mem"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def take(self) -> List[Dict[str, Any]]:
        """Pop everything buffered so far (the cluster piggyback drain)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def reset(self) -> None:
        with self._lock:
            self._events = []

    def close(self) -> None:
        pass


class JsonlSink:
    """Append-only JSONL file shared by every process in the run.

    Each event is serialised to one line and pushed with a single
    ``os.write``-backed call on an append-mode, unbuffered binary handle:
    POSIX ``O_APPEND`` semantics make concurrent line writes atomic, so a
    reader always sees whole JSON lines regardless of how many processes
    share the file.
    """

    kind = "jsonl"

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "ab", buffering=0)

    def emit(self, event: Dict[str, Any]) -> None:
        line = (json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            self._handle.write(line)

    def events(self) -> List[Dict[str, Any]]:
        """Re-read the shared file: picks up every writer, not just us."""
        return list(read_jsonl(self.path))

    def take(self) -> List[Dict[str, Any]]:
        return []  # the file *is* the shared buffer; nothing to hand-carry

    def reset(self) -> None:
        pass

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass


def read_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    """Yield events from a trace file, skipping any torn trailing line."""
    try:
        handle = open(path, "rb")
    except OSError:
        return
    with handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except ValueError:
                continue  # torn or foreign line — never poison a whole trace
            if isinstance(event, dict):
                yield event


class Telemetry:
    """One process's telemetry state: a sink plus in-memory metric aggregates.

    Spans stream to the sink eagerly (they are the trace); counters, gauges
    and histograms aggregate locally and are folded into snapshots, drained
    for the cluster piggyback, or flushed to the JSONL file at process exit
    so pool children's metrics survive them.
    """

    def __init__(self, sink: Any, spec: str) -> None:
        self.sink = sink
        self.spec = spec
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, List[float]] = {}  # [last, max]
        self._histograms: Dict[MetricKey, List[float]] = {}  # [count, sum, min, max]
        self._hist_buckets: Dict[MetricKey, List[float]] = {}
        self._hist_exemplars: Dict[MetricKey, str] = {}  # trace_id of the max

    # ------------------------------------------------------------- recording

    def record_span(self, span: SpanHandle) -> None:
        event: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "trace_id": span.trace_id,
            "pid": os.getpid(),
            "start": span.start,
            "wall": span.wall,
            "duration": span.end - span.start,
        }
        if span.attrs:
            event["attrs"] = {key: _jsonable(value) for key, value in span.attrs.items()}
        self.sink.emit(event)

    def counter(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            slot = self._gauges.get(key)
            if slot is None:
                self._gauges[key] = [value, value]
            else:
                slot[0] = value
                if value > slot[1]:
                    slot[1] = value

    def histogram(
        self, name: str, value: float, exemplar: Optional[str] = None, **labels: Any
    ) -> None:
        """Record one observation; ``exemplar`` is a trace ID to pin.

        The exemplar kept per series is the trace of the *slowest*
        observation so far — the one you want to pull the waterfall for.
        """
        key = (name, _label_key(labels))
        with self._lock:
            slot = self._histograms.get(key)
            if slot is None:
                self._histograms[key] = [1.0, value, value, value]
                if exemplar:
                    self._hist_exemplars[key] = exemplar
            else:
                slot[0] += 1.0
                slot[1] += value
                if value < slot[2]:
                    slot[2] = value
                if value >= slot[3]:
                    slot[3] = value
                    if exemplar:
                        self._hist_exemplars[key] = exemplar
            buckets = self._hist_buckets.get(key)
            if buckets is None:
                buckets = [0.0] * (len(HISTOGRAM_BUCKETS) + 1)
                self._hist_buckets[key] = buckets
            buckets[_bucket_index(value)] += 1.0

    # ------------------------------------------------------------- extraction

    def metrics_events(self, reset: bool = False) -> List[Dict[str, Any]]:
        """The local aggregates as portable event dicts."""
        events: List[Dict[str, Any]] = []
        pid = os.getpid()
        with self._lock:
            for (name, labels), value in self._counters.items():
                events.append(
                    {"type": "counter", "name": name, "labels": dict(labels), "value": value, "pid": pid}
                )
            for (name, labels), (last, high) in self._gauges.items():
                events.append(
                    {"type": "gauge", "name": name, "labels": dict(labels), "value": last, "max": high, "pid": pid}
                )
            for key, (count, total, low, high) in self._histograms.items():
                name, labels = key
                event: Dict[str, Any] = {
                    "type": "histogram",
                    "name": name,
                    "labels": dict(labels),
                    "count": count,
                    "sum": total,
                    "min": low,
                    "max": high,
                    "pid": pid,
                }
                buckets = self._hist_buckets.get(key)
                if buckets is not None:
                    event["buckets"] = list(buckets)
                exemplar = self._hist_exemplars.get(key)
                if exemplar:
                    event["exemplar"] = exemplar
                events.append(event)
            if reset:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
                self._hist_buckets.clear()
                self._hist_exemplars.clear()
        return events

    def ingest(self, events: Sequence[Dict[str, Any]], **extra_labels: Any) -> None:
        """Fold foreign events (a worker's drained blob) into this process.

        Span events are re-emitted to our sink tagged with ``extra_labels``
        (e.g. ``worker="w-3"``); metric events merge into our aggregates with
        the extra labels appended, so a fleet-wide snapshot keeps per-worker
        series distinct.
        """
        for event in events:
            kind = event.get("type")
            if kind == "span":
                merged = dict(event)
                if extra_labels:
                    attrs = dict(merged.get("attrs") or {})
                    attrs.update({key: _jsonable(value) for key, value in extra_labels.items()})
                    merged["attrs"] = attrs
                self.sink.emit(merged)
            elif kind == "counter":
                labels = dict(event.get("labels") or {})
                labels.update(extra_labels)
                self.counter(event["name"], float(event.get("value", 0.0)), **labels)
            elif kind == "gauge":
                labels = dict(event.get("labels") or {})
                labels.update(extra_labels)
                value = float(event.get("value", 0.0))
                high = float(event.get("max", value))
                key = (event["name"], _label_key(labels))
                with self._lock:
                    slot = self._gauges.get(key)
                    if slot is None:
                        self._gauges[key] = [value, high]
                    else:
                        slot[0] = value
                        if high > slot[1]:
                            slot[1] = high
            elif kind == "histogram":
                labels = dict(event.get("labels") or {})
                labels.update(extra_labels)
                self._merge_histogram(event, labels)

    def _merge_histogram(self, event: Dict[str, Any], labels: Dict[str, Any]) -> None:
        key = (event["name"], _label_key(labels))
        count = float(event.get("count", 0.0))
        total = float(event.get("sum", 0.0))
        low = float(event.get("min", 0.0))
        high = float(event.get("max", 0.0))
        incoming = event.get("buckets")
        exemplar = event.get("exemplar")
        with self._lock:
            slot = self._histograms.get(key)
            if slot is None:
                self._histograms[key] = [count, total, low, high]
                if isinstance(incoming, list):
                    self._hist_buckets[key] = [float(v) for v in incoming]
                if isinstance(exemplar, str) and exemplar:
                    self._hist_exemplars[key] = exemplar
            else:
                if high >= slot[3] and isinstance(exemplar, str) and exemplar:
                    self._hist_exemplars[key] = exemplar
                slot[0] += count
                slot[1] += total
                if low < slot[2]:
                    slot[2] = low
                if high > slot[3]:
                    slot[3] = high
                if isinstance(incoming, list):
                    buckets = self._hist_buckets.get(key)
                    if buckets is None:
                        self._hist_buckets[key] = [float(v) for v in incoming]
                    else:
                        for index in range(min(len(buckets), len(incoming))):
                            buckets[index] += float(incoming[index])

    def drain(self) -> List[Dict[str, Any]]:
        """Pop buffered spans *and* metric aggregates (cluster piggyback)."""
        events = list(self.sink.take())
        events.extend(self.metrics_events(reset=True))
        return events

    def flush_metrics(self) -> None:
        """Write the aggregates into the sink (JSONL end-of-process flush)."""
        for event in self.metrics_events():
            self.sink.emit(event)

    def reset_in_child(self) -> None:
        """Post-``fork()`` reset: drop aggregates copied from the parent.

        Without this, every pool child would re-flush the parent's pre-fork
        counters at exit and snapshots would multiply-count them.  The JSONL
        file handle is kept — ``O_APPEND`` descriptors are fork-safe.
        """
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._hist_buckets.clear()
            self._hist_exemplars.clear()
        self.sink.reset()

    def close(self) -> None:
        # Flush before closing: detaching (configure("off"), or swapping
        # specs) must not lose the aggregates a post-mortem reader expects
        # to find in the trace file.
        try:
            self.flush_metrics()
        except OSError:  # pragma: no cover - sink already gone
            pass
        self.sink.close()


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def telemetry_from_spec(spec: Optional[str]) -> Optional[Telemetry]:
    """Build a :class:`Telemetry` from a spec string; ``None`` means off.

    Grammar (mirrors ``executor_spec``/``board_spec``):

    - ``"off"`` (or empty) — disabled; every primitive is a no-op.
    - ``"mem"`` — buffer events in-process (single-process runs, tests).
    - ``"jsonl:<path>"`` — stream events to an append-only JSONL trace file
      shared by every process in the run.
    """
    if spec is None:
        return None
    text = spec.strip()
    if text in ("", SPEC_OFF):
        return None
    if text == "mem":
        return Telemetry(MemSink(), text)
    if text.startswith("jsonl:"):
        path = text[len("jsonl:"):]
        if not path:
            raise ValueError("jsonl telemetry spec needs a path: 'jsonl:<path>'")
        return Telemetry(JsonlSink(path), text)
    raise ValueError(
        f"unknown telemetry spec {spec!r}; expected 'off', 'mem', or 'jsonl:<path>'"
    )


# Re-exported for facade convenience; the canonical home is context.py.
__all__ = [
    "HISTOGRAM_BUCKETS",
    "JsonlSink",
    "LabelKey",
    "MemSink",
    "MetricKey",
    "SPEC_OFF",
    "SpanHandle",
    "TELEMETRY_ENV",
    "Telemetry",
    "TraceContext",
    "active_spans",
    "read_jsonl",
    "telemetry_from_spec",
]
