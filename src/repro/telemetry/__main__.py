"""``python -m repro.telemetry`` — offline trace tooling.

``summarize <trace.jsonl>`` renders a span tree with self/total times, the
top-N self-time hotspots, and a Prometheus-style metrics block from a trace
written by the ``jsonl:<path>`` telemetry spec.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.telemetry.snapshot import TelemetrySnapshot


def summarize(path: str, top: int = 10) -> str:
    snapshot = TelemetrySnapshot.from_jsonl(path)
    header = f"Trace {path}: "
    return header + snapshot.summary(top=top)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Offline tooling for repro telemetry traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    summarize_cmd = commands.add_parser(
        "summarize", help="render a span tree, hotspots, and metrics from a JSONL trace"
    )
    summarize_cmd.add_argument("trace", help="path to a trace written by the jsonl:<path> spec")
    summarize_cmd.add_argument(
        "--top", type=int, default=10, help="number of self-time hotspots to list (default 10)"
    )
    options = parser.parse_args(argv)

    if options.command == "summarize":
        if not os.path.exists(options.trace):
            print(f"no such trace file: {options.trace}", file=sys.stderr)
            return 2
        print(summarize(options.trace, top=options.top))
        return 0
    parser.error(f"unknown command {options.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
