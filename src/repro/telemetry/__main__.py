"""``python -m repro.telemetry`` — offline trace tooling.

Three subcommands over a trace written by the ``jsonl:<path>`` telemetry
spec:

- ``summarize <trace.jsonl>`` — span tree with self/total times, top-N
  self-time hotspots, slowest traces, and a Prometheus-style metrics block.
- ``trace <trace.jsonl> <trace_id>`` — the waterfall for one trace
  (``trace_id`` may be a unique prefix).
- ``slowest <trace.jsonl> [N]`` — the N slowest traces by end-to-end
  duration, with the trace IDs to feed back into ``trace``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.telemetry.snapshot import TelemetrySnapshot, _format_seconds


def summarize(path: str, top: int = 10) -> str:
    snapshot = TelemetrySnapshot.from_jsonl(path)
    header = f"Trace {path}: "
    return header + snapshot.summary(top=top)


def waterfall(path: str, trace_id: str, width: int = 48) -> str:
    snapshot = TelemetrySnapshot.from_jsonl(path)
    return snapshot.render_waterfall(trace_id, width=width)


def slowest(path: str, top: int = 10) -> str:
    snapshot = TelemetrySnapshot.from_jsonl(path)
    ranked = snapshot.slowest_traces(top=top)
    if not ranked:
        return "no traces (spans carry no trace_id — trace written before tracing?)"
    lines = [f"Slowest {len(ranked)} trace(s) in {path}:"]
    for rank, (trace_id, duration, root_name, span_count) in enumerate(ranked, start=1):
        lines.append(
            f"{rank:3d}. {trace_id}  {_format_seconds(duration):>9}"
            f"  {root_name}  ({span_count} span(s))"
        )
    lines.append("")
    lines.append("Render one: python -m repro.telemetry trace <trace.jsonl> <trace_id>")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Offline tooling for repro telemetry traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize_cmd = commands.add_parser(
        "summarize", help="render a span tree, hotspots, and metrics from a JSONL trace"
    )
    summarize_cmd.add_argument("trace", help="path to a trace written by the jsonl:<path> spec")
    summarize_cmd.add_argument(
        "--top", type=int, default=10, help="number of self-time hotspots to list (default 10)"
    )

    trace_cmd = commands.add_parser(
        "trace", help="render the waterfall for one trace_id (unique prefixes accepted)"
    )
    trace_cmd.add_argument("trace", help="path to a trace written by the jsonl:<path> spec")
    trace_cmd.add_argument("trace_id", help="32-hex trace ID (or a unique prefix)")
    trace_cmd.add_argument(
        "--width", type=int, default=48, help="bar width in characters (default 48)"
    )

    slowest_cmd = commands.add_parser(
        "slowest", help="list the N slowest traces by end-to-end duration"
    )
    slowest_cmd.add_argument("trace", help="path to a trace written by the jsonl:<path> spec")
    slowest_cmd.add_argument(
        "top", type=int, nargs="?", default=10, help="how many traces to list (default 10)"
    )

    options = parser.parse_args(argv)
    if not os.path.exists(options.trace):
        print(f"no such trace file: {options.trace}", file=sys.stderr)
        return 2

    if options.command == "summarize":
        print(summarize(options.trace, top=options.top))
        return 0
    if options.command == "trace":
        print(waterfall(options.trace, options.trace_id, width=options.width))
        return 0
    if options.command == "slowest":
        print(slowest(options.trace, top=options.top))
        return 0
    parser.error(f"unknown command {options.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
