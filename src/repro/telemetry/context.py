"""Request-scoped trace context: the glue that makes spans *distributed*.

A :class:`TraceContext` is the portable half of a span: the ``trace_id``
naming the end-to-end operation (one HTTP cast, one tally), the ``span_id``
of the innermost open span (the parent any new child attaches under), and
the head-sampling decision.  It travels two ways:

- **In-process** via a :mod:`contextvars.ContextVar`, so parenting is
  correct in asyncio (each task sees its own copy-on-write context) *and*
  across ``asyncio.to_thread`` (which copies the context into the worker
  thread).  Plain ``threading.Thread`` does **not** inherit context — that
  is deliberate: a daemon flusher thread must not adopt whatever request
  happened to spawn it.  Boundaries that *should* carry context across a
  bare thread or queue hop capture it with :func:`current_context` and
  re-attach with :func:`attach`/:func:`detach`.
- **Between processes** as a W3C ``traceparent``-style header
  (``00-<32 hex trace>-<16 hex span>-<2 hex flags>``): the SDK sends it on
  HTTP requests, the gateway parses or mints one per request, and cluster
  TASK frames carry it to workers so their spans parent into the
  originating request.

Head sampling is decided once, when a trace is minted, from
``REPRO_TELEMETRY_SAMPLE`` (a probability in ``[0, 1]``, default ``1``).
The decision is a deterministic hash of the trace ID, so every process
that sees the same trace agrees without coordination.  Spans in an
unsampled trace still mint IDs and maintain parenting (children may turn
out to error), but only *record* when they fail — errors are always
sampled.
"""

from __future__ import annotations

import contextvars
import os
import secrets
from typing import Any, NamedTuple, Optional

#: Env knob: head-sampling probability in [0, 1].  Read per mint, so tests
#: and long-lived gateways can flip it without restarting.
SAMPLE_ENV = "REPRO_TELEMETRY_SAMPLE"

#: The HTTP header (and frame field) the context travels in.
TRACEPARENT_HEADER = "traceparent"

_VERSION = "00"
_HEX = frozenset("0123456789abcdef")

# 2^32 buckets for the deterministic sampling hash of the trace ID prefix.
_SAMPLE_BUCKETS = float(1 << 32)


class TraceContext(NamedTuple):
    """The portable trace state: ``(trace_id, span_id, sampled)``.

    ``trace_id`` is 32 lowercase hex chars; ``span_id`` is the 16-hex ID of
    the current span (the parent for any child opened under this context),
    or ``""`` for a freshly minted trace that has not opened a span yet.
    """

    trace_id: str
    span_id: str
    sampled: bool

    def to_traceparent(self) -> str:
        """Encode as a W3C-style ``traceparent`` value."""
        parent = self.span_id if len(self.span_id) == 16 else "0" * 16
        flags = "01" if self.sampled else "00"
        return f"{_VERSION}-{self.trace_id}-{parent}-{flags}"

    def child(self, span_id: str) -> "TraceContext":
        """The context a span opened under this one installs for *its* children."""
        return TraceContext(self.trace_id, span_id, self.sampled)


_ACTIVE: "contextvars.ContextVar[Optional[TraceContext]]" = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> Optional[TraceContext]:
    """The context attached to the current thread/task, or ``None``."""
    return _ACTIVE.get()


def attach(context: Optional[TraceContext]) -> "contextvars.Token[Optional[TraceContext]]":
    """Install ``context`` for the current execution scope.

    Returns a token for :func:`detach`.  Always pair the two (``try/finally``)
    — an unbalanced attach leaks the context into whatever runs next on the
    same thread.
    """
    return _ACTIVE.set(context)


def detach(token: "contextvars.Token[Optional[TraceContext]]") -> None:
    """Restore the context that was active before the paired :func:`attach`."""
    _ACTIVE.reset(token)


def new_trace_id() -> str:
    """A fresh 32-hex trace ID (CSPRNG-backed; collision-free in practice)."""
    return secrets.token_hex(16)


# Parse memo for sample_rate(): (raw env string, parsed rate).  The env var
# is still *read* on every mint — only the float parse/clamp is cached — so
# flipping the knob on a live process keeps working.
_RATE_MEMO = ("", 1.0)


def sample_rate() -> float:
    """The head-sampling probability from ``REPRO_TELEMETRY_SAMPLE``."""
    global _RATE_MEMO
    raw = os.environ.get(SAMPLE_ENV)
    if not raw:
        return 1.0
    memo_raw, memo_rate = _RATE_MEMO
    if raw == memo_raw:
        return memo_rate
    try:
        rate = min(1.0, max(0.0, float(raw)))
    except ValueError:
        rate = 1.0
    _RATE_MEMO = (raw, rate)
    return rate


def trace_is_sampled(trace_id: str, rate: Optional[float] = None) -> bool:
    """Deterministic head-sampling decision for ``trace_id``.

    Hashing the ID (rather than rolling a die) means every process that
    parses the same traceparent reaches the same verdict with no flag
    handshake, and re-minting the decision is idempotent.
    """
    if rate is None:
        rate = sample_rate()
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    try:
        bucket = int(trace_id[:8], 16)
    except ValueError:
        return True
    return bucket < rate * _SAMPLE_BUCKETS


def new_trace(sampled: Optional[bool] = None) -> TraceContext:
    """Mint a fresh root context (no parent span yet)."""
    trace_id = new_trace_id()
    if sampled is None:
        sampled = trace_is_sampled(trace_id)
    return TraceContext(trace_id, "", sampled)


def parse_traceparent(value: Any) -> Optional[TraceContext]:
    """Decode a ``traceparent`` header value; ``None`` on anything malformed.

    Lenient on version (any 2-hex version parses, per the W3C forward-compat
    rule) and strict on shape: 32-hex trace, 16-hex parent, 2-hex flags.
    An all-zero trace ID is invalid and rejected.
    """
    if not isinstance(value, str):
        return None
    parts = value.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or not _HEX.issuperset(version) or version == "ff":
        return None
    if len(trace_id) != 32 or not _HEX.issuperset(trace_id) or trace_id == "0" * 32:
        return None
    if len(span_id) != 16 or not _HEX.issuperset(span_id) or span_id == "0" * 16:
        return None
    if len(flags) != 2 or not _HEX.issuperset(flags):
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return TraceContext(trace_id, span_id, sampled)


def format_traceparent(context: Optional[TraceContext]) -> Optional[str]:
    """Encode a context for the wire; ``None`` stays ``None`` (nothing to send)."""
    if context is None:
        return None
    return context.to_traceparent()


__all__ = [
    "SAMPLE_ENV",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "attach",
    "current_context",
    "detach",
    "format_traceparent",
    "new_trace",
    "new_trace_id",
    "parse_traceparent",
    "sample_rate",
    "trace_is_sampled",
]
