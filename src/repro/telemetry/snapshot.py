"""Merged telemetry reports: snapshots, Prometheus text, span trees.

A :class:`TelemetrySnapshot` is built from *events* — the portable dicts the
sinks store (see :mod:`repro.telemetry.core`) — so the same code renders a
live in-process snapshot, a multi-process ``jsonl:`` trace file, and a
cluster fleet report where worker events arrived piggybacked on RESULT
frames.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.core import HISTOGRAM_BUCKETS, LabelKey, _label_key, read_jsonl

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, suffix: str = "") -> str:
    return "repro_" + _NAME_RE.sub("_", name) + suffix


def _label_text(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_NAME_RE.sub("_", key)}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


class TelemetrySnapshot:
    """One merged, queryable view over spans and metric aggregates."""

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []
        self.counters: Dict[Tuple[str, LabelKey], float] = {}
        self.gauges: Dict[Tuple[str, LabelKey], Tuple[float, float]] = {}  # (last, max)
        self.histograms: Dict[Tuple[str, LabelKey], Tuple[float, float, float, float]] = {}
        self.histogram_buckets: Dict[Tuple[str, LabelKey], List[float]] = {}
        self.histogram_exemplars: Dict[Tuple[str, LabelKey], str] = {}

    # ------------------------------------------------------------- building

    @classmethod
    def from_events(cls, events: Iterable[Dict[str, Any]]) -> "TelemetrySnapshot":
        snapshot = cls()
        for event in events:
            snapshot.add_event(event)
        return snapshot

    @classmethod
    def from_jsonl(cls, path: str) -> "TelemetrySnapshot":
        return cls.from_events(read_jsonl(path))

    def add_event(self, event: Dict[str, Any]) -> None:
        kind = event.get("type")
        if kind == "span":
            self.spans.append(event)
            return
        name = event.get("name")
        if not isinstance(name, str):
            return
        key = (name, _label_key(event.get("labels") or {}))
        if kind == "counter":
            self.counters[key] = self.counters.get(key, 0.0) + float(event.get("value", 0.0))
        elif kind == "gauge":
            value = float(event.get("value", 0.0))
            high = float(event.get("max", value))
            last, prior_high = self.gauges.get(key, (value, high))
            self.gauges[key] = (value, max(high, prior_high))
        elif kind == "histogram":
            count = float(event.get("count", 0.0))
            total = float(event.get("sum", 0.0))
            low = float(event.get("min", 0.0))
            high = float(event.get("max", 0.0))
            exemplar = event.get("exemplar")
            slot = self.histograms.get(key)
            if slot is None:
                self.histograms[key] = (count, total, low, high)
                if isinstance(exemplar, str) and exemplar:
                    self.histogram_exemplars[key] = exemplar
            else:
                if high >= slot[3] and isinstance(exemplar, str) and exemplar:
                    self.histogram_exemplars[key] = exemplar
                self.histograms[key] = (
                    slot[0] + count,
                    slot[1] + total,
                    min(slot[2], low),
                    max(slot[3], high),
                )
            incoming = event.get("buckets")
            if isinstance(incoming, list):
                buckets = self.histogram_buckets.get(key)
                if buckets is None:
                    self.histogram_buckets[key] = [float(v) for v in incoming]
                else:
                    for index in range(min(len(buckets), len(incoming))):
                        buckets[index] += float(incoming[index])

    # ------------------------------------------------------------- queries

    def span_names(self) -> List[str]:
        return sorted({span.get("name", "") for span in self.spans})

    def spans_named(self, name: str) -> List[Dict[str, Any]]:
        return [span for span in self.spans if span.get("name") == name]

    def counter_total(self, name: str, **labels: Any) -> float:
        """Sum of a counter across every label set matching ``labels``."""
        want = dict(_label_key(labels))
        total = 0.0
        for (metric, label_key), value in self.counters.items():
            if metric != name:
                continue
            have = dict(label_key)
            if all(have.get(key) == value_ for key, value_ in want.items()):
                total += value
        return total

    def gauge_high_water(self, name: str, **labels: Any) -> Optional[float]:
        """Max observed value of a gauge across matching label sets."""
        want = dict(_label_key(labels))
        best: Optional[float] = None
        for (metric, label_key), (_, high) in self.gauges.items():
            if metric != name:
                continue
            have = dict(label_key)
            if all(have.get(key) == value_ for key, value_ in want.items()):
                best = high if best is None else max(best, high)
        return best

    def histogram_quantile(self, name: str, quantile: float, **labels: Any) -> Optional[float]:
        """Approximate quantile from merged bucket arrays (p50: ``0.5``).

        Linear interpolation inside the landing bucket; clamped by the
        observed min/max so a wide bucket cannot report a value outside
        what was actually seen.  ``None`` when no matching series carries
        buckets.
        """
        want = dict(_label_key(labels))
        merged = [0.0] * (len(HISTOGRAM_BUCKETS) + 1)
        low = high = None
        found = False
        for key, buckets in self.histogram_buckets.items():
            metric, label_key = key
            if metric != name:
                continue
            have = dict(label_key)
            if not all(have.get(k) == v for k, v in want.items()):
                continue
            found = True
            for index in range(min(len(merged), len(buckets))):
                merged[index] += buckets[index]
            slot = self.histograms.get(key)
            if slot is not None:
                low = slot[2] if low is None else min(low, slot[2])
                high = slot[3] if high is None else max(high, slot[3])
        total = sum(merged)
        if not found or total <= 0.0:
            return None
        rank = max(0.0, min(1.0, quantile)) * total
        cumulative = 0.0
        for index, count in enumerate(merged):
            if count <= 0.0:
                continue
            if cumulative + count >= rank:
                lower = HISTOGRAM_BUCKETS[index - 1] if index > 0 else 0.0
                upper = (
                    HISTOGRAM_BUCKETS[index]
                    if index < len(HISTOGRAM_BUCKETS)
                    else (high if high is not None else lower)
                )
                fraction = (rank - cumulative) / count
                value = lower + (upper - lower) * fraction
                if low is not None:
                    value = max(value, low)
                if high is not None:
                    value = min(value, high)
                return value
            cumulative += count
        return high

    # ------------------------------------------------------------- traces

    def traces(self) -> Dict[str, List[Dict[str, Any]]]:
        """Spans grouped by ``trace_id`` (spans without one are skipped)."""
        grouped: Dict[str, List[Dict[str, Any]]] = {}
        for span in self.spans:
            trace_id = span.get("trace_id")
            if isinstance(trace_id, str) and trace_id:
                grouped.setdefault(trace_id, []).append(span)
        return grouped

    def trace_spans(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every span of one trace, including a unique-prefix match."""
        grouped = self.traces()
        if trace_id in grouped:
            return grouped[trace_id]
        matches = [tid for tid in grouped if tid.startswith(trace_id)]
        if len(matches) == 1:
            return grouped[matches[0]]
        return []

    def slowest_traces(self, top: int = 10) -> List[Tuple[str, float, str, int]]:
        """``(trace_id, duration_seconds, root_name, span_count)`` by duration.

        Duration is the wall-clock extent when spans carry ``wall`` stamps
        (cross-process safe); otherwise the widest per-PID ``perf_counter``
        extent (clocks from different PIDs are not comparable).
        """
        ranked: List[Tuple[str, float, str, int]] = []
        for trace_id, spans in self.traces().items():
            ranked.append((trace_id, _trace_extent(spans), _trace_root_name(spans), len(spans)))
        ranked.sort(key=lambda item: item[1], reverse=True)
        return ranked[:top]

    def render_waterfall(self, trace_id: str, width: int = 48) -> str:
        """One trace as an indented timeline: offsets, bars, durations.

        Offsets are wall-clock based when every span carries a ``wall``
        stamp; otherwise spans are aligned per-PID (monotonic clocks do not
        compare across processes) with child processes anchored at their
        parent span's offset.
        """
        spans = self.trace_spans(trace_id)
        if not spans:
            return f"trace {trace_id}: no spans"
        offsets = _trace_offsets(spans)
        extent = max(
            offsets[id(span)] + float(span.get("duration", 0.0)) for span in spans
        ) or 1e-9
        by_id = {span.get("span_id"): span for span in spans if span.get("span_id")}
        children: Dict[Optional[str], List[Dict[str, Any]]] = {}
        roots: List[Dict[str, Any]] = []
        for span in spans:
            parent = span.get("parent_id")
            if parent and parent in by_id:
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)

        lines = [
            f"trace {trace_id}  —  {len(spans)} span(s), {_format_seconds(extent)}"
        ]
        name_width = min(40, max(len(str(span.get("name", ""))) for span in spans) + 2)

        def walk(members: List[Dict[str, Any]], depth: int) -> None:
            members = sorted(members, key=lambda span: offsets[id(span)])
            for span in members:
                offset = offsets[id(span)]
                duration = float(span.get("duration", 0.0))
                begin = int(round(width * offset / extent))
                length = max(1, int(round(width * duration / extent)))
                begin = min(begin, width - 1)
                length = min(length, width - begin)
                bar = " " * begin + "█" * length + " " * (width - begin - length)
                label = ("  " * depth + str(span.get("name", "")))[: name_width + 8]
                error = ""
                attrs = span.get("attrs") or {}
                if attrs.get("error"):
                    error = f"  !{attrs['error']}"
                lines.append(
                    f"{label.ljust(name_width + 8)} |{bar}| "
                    f"{_format_seconds(duration):>9}  @+{_format_seconds(offset)}{error}"
                )
                walk(children.get(span.get("span_id"), []), depth + 1)

        walk(roots, 0)
        return "\n".join(lines)

    # ------------------------------------------------------------- rendering

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every metric plus span aggregates."""
        lines: List[str] = []
        seen_types: set = set()

        def header(base: str, kind: str) -> None:
            if base not in seen_types:
                seen_types.add(base)
                lines.append(f"# TYPE {base} {kind}")

        for (name, labels), value in sorted(self.counters.items()):
            base = _metric_name(name, "_total")
            header(base, "counter")
            lines.append(f"{base}{_label_text(labels)} {_num(value)}")
        for (name, labels), (last, high) in sorted(self.gauges.items()):
            base = _metric_name(name)
            header(base, "gauge")
            lines.append(f"{base}{_label_text(labels)} {_num(last)}")
            header(base + "_max", "gauge")
            lines.append(f"{base}_max{_label_text(labels)} {_num(high)}")
        for (name, labels), (count, total, low, high) in sorted(self.histograms.items()):
            base = _metric_name(name)
            header(base + "_count", "counter")
            lines.append(f"{base}_count{_label_text(labels)} {_num(count)}")
            header(base + "_sum", "counter")
            lines.append(f"{base}_sum{_label_text(labels)} {_num(total)}")
            header(base + "_min", "gauge")
            lines.append(f"{base}_min{_label_text(labels)} {_num(low)}")
            header(base + "_max", "gauge")
            lines.append(f"{base}_max{_label_text(labels)} {_num(high)}")
            buckets = self.histogram_buckets.get((name, labels))
            if buckets:
                header(base + "_bucket", "counter")
                cumulative = 0.0
                for index, bucket_count in enumerate(buckets):
                    cumulative += bucket_count
                    bound = (
                        _num(HISTOGRAM_BUCKETS[index])
                        if index < len(HISTOGRAM_BUCKETS)
                        else "+Inf"
                    )
                    bucket_labels = labels + (("le", bound),)
                    lines.append(
                        f"{base}_bucket{_label_text(bucket_labels)} {_num(cumulative)}"
                    )

        span_aggregate: Dict[str, List[float]] = {}
        for span in self.spans:
            slot = span_aggregate.setdefault(str(span.get("name", "")), [0.0, 0.0])
            slot[0] += 1.0
            slot[1] += float(span.get("duration", 0.0))
        for name in sorted(span_aggregate):
            count, total = span_aggregate[name]
            labels: LabelKey = (("name", name),)
            header("repro_span_seconds_count", "counter")
            lines.append(f"repro_span_seconds_count{_label_text(labels)} {_num(count)}")
            header("repro_span_seconds_sum", "counter")
            lines.append(f"repro_span_seconds_sum{_label_text(labels)} {_num(total)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def span_tree(self) -> List["SpanGroup"]:
        """The trace as an aggregated tree: siblings of one name collapse.

        Spans whose parent never reached the sink (cross-process roots,
        in-flight parents) become roots.  Within each level, groups sort by
        total time descending.
        """
        by_id = {span.get("span_id"): span for span in self.spans if span.get("span_id")}
        children: Dict[Optional[str], List[Dict[str, Any]]] = {}
        roots: List[Dict[str, Any]] = []
        for span in self.spans:
            parent = span.get("parent_id")
            if parent and parent in by_id:
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)
        return _group_spans(roots, children)

    def hotspots(self, top: int = 10) -> List[Tuple[str, int, float, float]]:
        """``(name, count, total_seconds, self_seconds)`` sorted by self time."""
        by_id = {span.get("span_id"): span for span in self.spans if span.get("span_id")}
        child_time: Dict[Optional[str], float] = {}
        for span in self.spans:
            parent = span.get("parent_id")
            if parent and parent in by_id:
                child_time[parent] = child_time.get(parent, 0.0) + float(span.get("duration", 0.0))
        aggregate: Dict[str, List[float]] = {}
        for span in self.spans:
            duration = float(span.get("duration", 0.0))
            self_time = max(0.0, duration - child_time.get(span.get("span_id"), 0.0))
            slot = aggregate.setdefault(str(span.get("name", "")), [0.0, 0.0, 0.0])
            slot[0] += 1.0
            slot[1] += duration
            slot[2] += self_time
        ranked = sorted(aggregate.items(), key=lambda item: item[1][2], reverse=True)
        return [(name, int(count), total, self_time) for name, (count, total, self_time) in ranked[:top]]

    def render_tree(self, max_depth: Optional[int] = None) -> str:
        lines: List[str] = []

        def walk(groups: Sequence["SpanGroup"], depth: int) -> None:
            if max_depth is not None and depth >= max_depth:
                return
            for group in groups:
                suffix = f" ×{group.count}" if group.count > 1 else ""
                lines.append(
                    "  " * depth
                    + f"{group.name}{suffix}  total {_format_seconds(group.total)}"
                    + f"  self {_format_seconds(group.self_time)}"
                )
                walk(group.children, depth + 1)

        walk(self.span_tree(), 0)
        return "\n".join(lines)

    def summary(self, top: int = 10) -> str:
        """The ``python -m repro.telemetry summarize`` report body."""
        pids = {span.get("pid") for span in self.spans if span.get("pid") is not None}
        parts: List[str] = []
        parts.append(f"{len(self.spans)} span(s) from {len(pids) or 1} process(es)")
        tree = self.render_tree()
        if tree:
            parts.append("")
            parts.append("Span tree (siblings grouped by name):")
            parts.append(tree)
        spots = self.hotspots(top=top)
        if spots:
            parts.append("")
            parts.append(f"Top {len(spots)} hotspots by self time:")
            width = max(len(name) for name, _, _, _ in spots)
            for rank, (name, count, total, self_time) in enumerate(spots, start=1):
                parts.append(
                    f"{rank:3d}. {name.ljust(width)}  ×{count:<5d}"
                    f" self {_format_seconds(self_time):>9}  total {_format_seconds(total):>9}"
                )
        slow = self.slowest_traces(top=top)
        if slow:
            parts.append("")
            parts.append(f"Slowest {len(slow)} trace(s):")
            for rank, (trace_id, duration, root_name, span_count) in enumerate(slow, start=1):
                parts.append(
                    f"{rank:3d}. {trace_id}  {_format_seconds(duration):>9}"
                    f"  {root_name}  ({span_count} span(s))"
                )
        metrics = self.to_prometheus()
        if metrics:
            parts.append("")
            parts.append("Metrics:")
            parts.append(metrics.rstrip("\n"))
        return "\n".join(parts)


class SpanGroup:
    """Aggregated siblings of one span name at one tree level."""

    __slots__ = ("name", "count", "total", "self_time", "children")

    def __init__(
        self, name: str, count: int, total: float, self_time: float, children: List["SpanGroup"]
    ) -> None:
        self.name = name
        self.count = count
        self.total = total
        self.self_time = self_time
        self.children = children


def _group_spans(
    spans: Sequence[Dict[str, Any]],
    children: Dict[Optional[str], List[Dict[str, Any]]],
) -> List[SpanGroup]:
    buckets: Dict[str, List[Dict[str, Any]]] = {}
    order: List[str] = []
    for span in sorted(spans, key=lambda span: float(span.get("start", 0.0))):
        name = str(span.get("name", ""))
        if name not in buckets:
            buckets[name] = []
            order.append(name)
        buckets[name].append(span)
    groups: List[SpanGroup] = []
    for name in order:
        members = buckets[name]
        total = sum(float(span.get("duration", 0.0)) for span in members)
        descendants: List[Dict[str, Any]] = []
        for span in members:
            descendants.extend(children.get(span.get("span_id"), []))
        child_groups = _group_spans(descendants, children)
        child_total = sum(group.total for group in child_groups)
        groups.append(SpanGroup(name, len(members), total, max(0.0, total - child_total), child_groups))
    groups.sort(key=lambda group: group.total, reverse=True)
    return groups


def _spans_have_wall(spans: Sequence[Dict[str, Any]]) -> bool:
    return all(float(span.get("wall", 0.0) or 0.0) > 0.0 for span in spans)


def _trace_extent(spans: Sequence[Dict[str, Any]]) -> float:
    """End-to-end duration of one trace's spans (see :meth:`slowest_traces`)."""
    if not spans:
        return 0.0
    if _spans_have_wall(spans):
        begin = min(float(span["wall"]) for span in spans)
        end = max(float(span["wall"]) + float(span.get("duration", 0.0)) for span in spans)
        return max(0.0, end - begin)
    extent = 0.0
    by_pid: Dict[Any, List[Dict[str, Any]]] = {}
    for span in spans:
        by_pid.setdefault(span.get("pid"), []).append(span)
    for members in by_pid.values():
        begin = min(float(span.get("start", 0.0)) for span in members)
        end = max(
            float(span.get("start", 0.0)) + float(span.get("duration", 0.0))
            for span in members
        )
        extent = max(extent, end - begin)
    return extent


def _trace_root_name(spans: Sequence[Dict[str, Any]]) -> str:
    ids = {span.get("span_id") for span in spans if span.get("span_id")}
    roots = [span for span in spans if span.get("parent_id") not in ids]
    if not roots:
        roots = list(spans)
    roots.sort(key=lambda span: float(span.get("wall", span.get("start", 0.0)) or 0.0))
    return str(roots[0].get("name", ""))


def _trace_offsets(spans: Sequence[Dict[str, Any]]) -> Dict[int, float]:
    """Per-span offset (seconds) from the trace origin, keyed by ``id(span)``.

    Wall-clock based when every span has a ``wall`` stamp.  Otherwise each
    PID's spans are laid out on its own monotonic clock, anchored at the
    offset of the parent span that dispatched into that PID (or 0).
    """
    offsets: Dict[int, float] = {}
    if _spans_have_wall(spans):
        origin = min(float(span["wall"]) for span in spans)
        for span in spans:
            offsets[id(span)] = float(span["wall"]) - origin
        return offsets
    by_id = {span.get("span_id"): span for span in spans if span.get("span_id")}
    pid_begin: Dict[Any, float] = {}
    pid_anchor: Dict[Any, float] = {}
    for span in spans:
        pid = span.get("pid")
        start = float(span.get("start", 0.0))
        if pid not in pid_begin or start < pid_begin[pid]:
            pid_begin[pid] = start
    root_pids = {
        span.get("pid") for span in spans if span.get("parent_id") not in by_id
    }
    for pid in pid_begin:
        if pid in root_pids:
            pid_anchor[pid] = 0.0
    for span in spans:
        pid = span.get("pid")
        if pid in pid_anchor:
            continue
        parent = by_id.get(span.get("parent_id"))
        if parent is not None and parent.get("pid") in pid_anchor:
            parent_pid = parent.get("pid")
            pid_anchor[pid] = (
                pid_anchor[parent_pid]
                + float(parent.get("start", 0.0))
                - pid_begin[parent_pid]
            )
    for span in spans:
        pid = span.get("pid")
        anchor = pid_anchor.get(pid, 0.0)
        offsets[id(span)] = anchor + float(span.get("start", 0.0)) - pid_begin.get(pid, 0.0)
    return offsets


def _num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
