"""Central registry of telemetry span and metric names.

Every ``telemetry.span`` / ``counter`` / ``gauge`` / ``histogram`` call site
must pass a string literal drawn from this module (enforced statically by
``repro.analysis`` rule REP005).  Two properties hang off that discipline:

- **Schedule-independent traces.**  The serial, streaming, and cluster
  schedules of the same tally must emit identical span names, or trace
  diffing (and the bench gates built on span aggregates) silently compares
  different things.  A literal drawn from one registry cannot drift per
  schedule the way an interpolated name can.
- **A closed cardinality budget.**  Dashboards and the Prometheus export
  enumerate this module; a name minted ad hoc at a call site is a metric
  nobody graphs and a cardinality leak nobody approved.

Names are grouped by instrument type because the analyzer checks the pair
(instrument, name): recording a span name on a counter is almost always a
call-site typo.  Dynamic *labels* (worker ids, shard indices) stay free-form
— only the name is pinned.
"""

from __future__ import annotations

from typing import FrozenSet

# ---------------------------------------------------------------- spans

SPAN_NAMES: FrozenSet[str] = frozenset(
    {
        "audit.run",
        "cluster.task",
        "cluster.warm",
        "executor.map",
        "executor.warm",
        "gateway.batch.admit",
        "gateway.client.request",
        "gateway.request",
        "ledger.append",
        "ledger.flush",
        "ledger.read",
        "pipeline.finalize",
        "pipeline.finish",
        "pipeline.stage",
        "tally.decrypt",
        "tally.join",
        "tally.mix",
        "tally.sig-check",
        "tally.tag",
    }
)

# -------------------------------------------------------------- counters

COUNTER_NAMES: FrozenSet[str] = frozenset(
    {
        "audit.checks",
        "audit.reports",
        "cluster.dispatch",
        "cluster.enroll",
        "cluster.heartbeat.miss",
        "cluster.reassign",
        "cluster.worker.lost",
        "gateway.casts",
        "gateway.errors",
        "gateway.shed",
        "gateway.ws.events",
        "ledger.append.ballots",
        "pipeline.backpressure.stalls",
    }
)

# ---------------------------------------------------------------- gauges

GAUGE_NAMES: FrozenSet[str] = frozenset(
    {
        "gateway.queue.depth",
        "pipeline.queue.depth",
    }
)

# ------------------------------------------------------------ histograms

HISTOGRAM_NAMES: FrozenSet[str] = frozenset(
    {
        "gateway.batch.size",
        "gateway.request.seconds",
        "ledger.flush.records",
    }
)

#: Every registered name, any instrument.
ALL_NAMES: FrozenSet[str] = SPAN_NAMES | COUNTER_NAMES | GAUGE_NAMES | HISTOGRAM_NAMES

#: Instrument → allowed names, keyed by the ``repro.telemetry`` entry point.
NAMES_BY_INSTRUMENT = {
    "span": SPAN_NAMES,
    "counter": COUNTER_NAMES,
    "gauge": GAUGE_NAMES,
    "histogram": HISTOGRAM_NAMES,
}
