"""Per-path policy: which rules run where.

Paths are normalized to the repo-relative grammar
(``repro/cluster/worker.py``, ``tests/...``, ``benchmarks/...``) by
:func:`repro.analysis.engine.policy_path`; the table below is matched
top-down with :func:`fnmatch.fnmatch` and the **first** matching row wins,
so put the most specific globs first.

The shape of the table encodes the threat model:

- **Crypto, cluster, tally, registration, ledger** paths carry the paper's
  guarantees (bit-identical tallies, secrets never logged, restricted
  unpickling) and get the strict set.
- ``repro/cluster/protocol.py`` is the *one* place pickle deserialization
  is allowed (it owns the restricted unpickler), so REP003 is dropped
  exactly there.
- **Telemetry** legitimately reads wall clocks (it measures them) and owns
  the name registry, so REP002/REP005 don't apply to it.
- **Bench, baselines, usability, peripherals** are harnesses and simulation
  shims — deliberately relaxed so lint pressure lands on the paths that
  carry guarantees, not on scaffolding.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.analysis.rules import Rule, rule_instances

__all__ = ["POLICY", "DEFAULT_RULES", "rules_for_path", "rule_ids_for_path"]

_ALL = frozenset({"REP001", "REP002", "REP003", "REP004", "REP005", "REP006"})

#: Ordered (glob, rule ids) rows; first match wins.
POLICY: List[Tuple[str, FrozenSet[str]]] = [
    # The restricted unpickler lives here — the single sanctioned
    # deserialization site.  Everything else stays strict.
    ("repro/cluster/protocol.py", _ALL - {"REP003"}),
    ("repro/cluster/*", _ALL),
    # The gateway is where untrusted bytes meet the trusted stack, and its
    # registration responses carry credential secrets — full strict set
    # (REP001 keeps secrets out of logs/errors, REP006 keeps the accept loop
    # from swallowing failures).
    ("repro/gateway/*", _ALL),
    ("repro/crypto/*", _ALL - {"REP004", "REP005"}),
    ("repro/registration/*", _ALL - {"REP004", "REP005"}),
    ("repro/tally/*", _ALL - {"REP001", "REP004"}),
    ("repro/ledger/*", _ALL - {"REP001"}),
    ("repro/election/*", _ALL - {"REP001", "REP004"}),
    ("repro/voting/*", _ALL - {"REP004", "REP005"}),
    ("repro/security/*", _ALL - {"REP004", "REP005"}),
    ("repro/runtime/*", frozenset({"REP003", "REP004", "REP005", "REP006"})),
    ("repro/audit/*", frozenset({"REP003", "REP005", "REP006"})),
    # Telemetry measures wall clocks and owns the name registry; hold it to
    # pickle-safety, lock-discipline, and exception-hygiene only.
    ("repro/telemetry/*", frozenset({"REP003", "REP004", "REP006"})),
    ("repro/analysis/*", frozenset({"REP003", "REP006"})),
    # Harness / simulation scaffolding: relaxed on purpose.
    ("repro/bench/*", frozenset({"REP003"})),
    ("repro/baselines/*", frozenset({"REP003"})),
    ("repro/usability/*", frozenset({"REP003"})),
    ("repro/peripherals/*", frozenset({"REP003"})),
    ("benchmarks/*", frozenset({"REP003"})),
    ("tests/*", frozenset()),  # fixtures may violate rules on purpose
]

#: Rules for paths no row matches (top-level modules like repro/errors.py).
DEFAULT_RULES: FrozenSet[str] = frozenset({"REP003", "REP006"})

_CACHE: Dict[str, Tuple[Rule, ...]] = {}


def rule_ids_for_path(path: str) -> FrozenSet[str]:
    """The rule ids the policy table selects for a normalized path."""
    for pattern, rule_ids in POLICY:
        if fnmatch(path, pattern):
            return rule_ids
    return DEFAULT_RULES


def rules_for_path(path: str) -> Sequence[Rule]:
    """Instantiated rule objects for a normalized path (cached per rule set)."""
    rule_ids = rule_ids_for_path(path)
    key = ",".join(sorted(rule_ids))
    cached = _CACHE.get(key)
    if cached is None:
        cached = tuple(rule_instances(rule_ids))
        _CACHE[key] = cached
    return cached
