"""repro.analysis — domain-aware static analysis for the reproduction.

A dependency-free lint engine built on :mod:`ast` that machine-checks the
invariants the rest of the codebase enforces only by convention: secrets
never reach log lines (REP001), protocol/tally/crypto paths stay
bit-deterministic (REP002), ``pickle.loads`` stays inside the restricted
unpickler (REP003), no blocking I/O or pool fan-out runs under a lock
(REP004), telemetry names come from the central registry (REP005), and
domain exceptions are never silently swallowed (REP006).

Run it as a CLI (the blocking CI gate)::

    PYTHONPATH=src python -m repro.analysis src/repro
    PYTHONPATH=src python -m repro.analysis --format json src/repro

Suppress a reviewed false positive inline::

    with worker.send_lock:  # repro: noqa[REP004] - leaf lock, see comment
        send_frame(...)

or record it in the checked-in baseline (``analysis-baseline.json``) with a
``justification`` — the CLI fails on any finding that is neither suppressed
nor baselined.
"""

from __future__ import annotations

from repro.analysis.engine import (
    AnalysisReport,
    Baseline,
    Finding,
    analyze_file,
    analyze_paths,
)
from repro.analysis.policy import POLICY, DEFAULT_RULES, rules_for_path
from repro.analysis.rules import ALL_RULES, RULE_REGISTRY

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Baseline",
    "DEFAULT_RULES",
    "Finding",
    "POLICY",
    "RULE_REGISTRY",
    "analyze_file",
    "analyze_paths",
    "rules_for_path",
]
