"""Lint engine: findings, inline suppression, baseline, and the file walker.

The engine is rule-agnostic.  A rule is any object with

- ``rule_id`` — ``"REPnnn"``,
- ``summary`` — one line for ``--list-rules``,
- ``rationale`` — why the rule exists (rendered in docs and JSON output),
- ``check(context) -> Iterable[Finding]`` — pure function of one parsed file.

Rules register themselves in :mod:`repro.analysis.rules`; which rules apply
to which file is the policy's job (:mod:`repro.analysis.policy`), not the
engine's.

Suppression has exactly two channels, both reviewable in diffs:

- **Inline**: a ``# repro: noqa[REP004]`` (or ``# repro: noqa[REP001,REP002]``,
  or blanket ``# repro: noqa``) comment on the offending line.  Use for
  intentional, locally-explainable exceptions — the comment sits next to the
  code it excuses.
- **Baseline**: ``analysis-baseline.json`` entries keyed by a line-drift-proof
  fingerprint ``(rule, path, stripped source line)``.  Use for documented
  false positives that have no natural inline anchor.  Each entry carries a
  ``justification`` string; the CLI refuses entries without one.

Everything else is a failure: the CLI exits nonzero on any finding that is
neither suppressed nor baselined, and reports baseline entries that no
longer match anything (so the baseline only ever shrinks).
"""

from __future__ import annotations

import ast
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Baseline",
    "Finding",
    "analyze_file",
    "analyze_paths",
    "policy_path",
]

# `# repro: noqa` with an optional [RULE,RULE] list.  Matched anywhere in the
# physical line so it composes with other trailing comments.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str  # policy-normalized, e.g. "repro/cluster/worker.py"
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    snippet: str  # the stripped physical source line (fingerprint component)

    def fingerprint(self) -> Tuple[str, str, str]:
        """Identity that survives unrelated edits moving the line around."""
        return (self.rule_id, self.path, self.snippet)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"


@dataclass
class AnalysisContext:
    """Everything a rule may look at for one file.  Parsed once, shared."""

    path: str  # policy-normalized path
    tree: ast.Module
    source_lines: Sequence[str]  # physical lines, no trailing newlines
    filename: str  # the on-disk path, for error messages only

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule_id,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
        )


def parse_noqa(source_lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number → suppressed rule ids (``None`` = all rules)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for index, line in enumerate(source_lines, start=1):
        if "repro:" not in line:
            continue
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[index] = None  # blanket
        else:
            ids = {part.strip().upper() for part in rules.split(",") if part.strip()}
            existing = suppressions.get(index, set())
            if existing is None:
                continue  # a blanket noqa on the same line already wins
            suppressions[index] = existing | ids
    return suppressions


def is_suppressed(finding: Finding, suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    rules = suppressions.get(finding.line, _MISSING)
    if rules is _MISSING:
        return False
    return rules is None or finding.rule_id in rules


_MISSING: Any = object()


# ------------------------------------------------------------------ baseline


class BaselineError(ValueError):
    """The baseline file is malformed or missing a justification."""


@dataclass
class Baseline:
    """Checked-in fingerprints of accepted findings, each with a reason."""

    entries: Dict[Tuple[str, str, str], str] = field(default_factory=dict)
    path: Optional[str] = None

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        if not isinstance(raw, dict) or not isinstance(raw.get("findings"), list):
            raise BaselineError(f"{path}: expected {{'version': 1, 'findings': [...]}}")
        entries: Dict[Tuple[str, str, str], str] = {}
        for item in raw["findings"]:
            try:
                key = (item["rule"], item["path"], item["snippet"])
                justification = item["justification"]
            except (TypeError, KeyError) as exc:
                raise BaselineError(f"{path}: malformed baseline entry {item!r}") from exc
            if not isinstance(justification, str) or not justification.strip():
                raise BaselineError(
                    f"{path}: baseline entry for {key[0]} at {key[1]} needs a non-empty justification"
                )
            entries[key] = justification
        return cls(entries=entries, path=path)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding], justification: str) -> "Baseline":
        return cls(entries={f.fingerprint(): justification for f in findings})

    def matches(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def unmatched(self, findings: Iterable[Finding]) -> List[Tuple[str, str, str]]:
        """Baseline entries no finding claimed — stale, should be deleted."""
        seen = {f.fingerprint() for f in findings}
        return sorted(key for key in self.entries if key not in seen)

    def dump(self, path: str) -> None:
        findings = [
            {"rule": rule, "path": file_path, "snippet": snippet, "justification": why}
            for (rule, file_path, snippet), why in sorted(self.entries.items())
        ]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": 1, "findings": findings}, handle, indent=2, sort_keys=False)
            handle.write("\n")


# ------------------------------------------------------------------ reports


@dataclass
class AnalysisReport:
    """The outcome of one analyzer run over a set of paths."""

    findings: List[Finding] = field(default_factory=list)  # new (gate-failing)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Set[str] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": sorted(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed_count": self.suppressed_count,
            "stale_baseline": [
                {"rule": rule, "path": path, "snippet": snippet}
                for rule, path, snippet in self.stale_baseline
            ],
        }


# ------------------------------------------------------------------ walking


def policy_path(filename: str) -> str:
    """Normalize an on-disk path to the policy's repo-relative grammar.

    ``/root/repo/src/repro/cluster/worker.py`` → ``repro/cluster/worker.py``;
    paths outside a ``src`` layout keep their last recognizable anchor
    (``tests/...``, ``benchmarks/...``) or fall back to the basename chain.
    """
    parts = os.path.abspath(filename).replace(os.sep, "/").split("/")
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            index = parts.index(anchor)
            # "repro" must be a package dir, not e.g. a repo checkout name:
            # require the anchor to be followed by something.
            if index < len(parts) - 1 or parts[-1] == anchor:
                return "/".join(parts[index:])
    return "/".join(parts[-2:]) if len(parts) >= 2 else parts[-1]


def iter_python_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                files.extend(os.path.join(root, n) for n in sorted(names) if n.endswith(".py"))
        elif path.endswith(".py"):
            files.append(path)
    return files


def analyze_file(
    filename: str,
    rules: Sequence[Any],
    *,
    path: Optional[str] = None,
    source: Optional[str] = None,
) -> List[Finding]:
    """Run ``rules`` over one file; returns active findings (noqa applied)."""
    active, _ = _analyze_one(filename, rules, path=path, source=source)
    return active


def _analyze_one(
    filename: str,
    rules: Sequence[Any],
    *,
    path: Optional[str] = None,
    source: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """(active findings, count of findings silenced by inline noqa)."""
    if source is None:
        with tokenize.open(filename) as handle:
            source = handle.read()
    normalized = path if path is not None else policy_path(filename)
    tree = ast.parse(source, filename=filename)
    source_lines = source.splitlines()
    context = AnalysisContext(
        path=normalized, tree=tree, source_lines=source_lines, filename=filename
    )
    suppressions = parse_noqa(source_lines)
    active: List[Finding] = []
    silenced = 0
    for rule in rules:
        for finding in rule.check(context):
            if is_suppressed(finding, suppressions):
                silenced += 1
            else:
                active.append(finding)
    active.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return active, silenced


def analyze_paths(
    paths: Sequence[str],
    *,
    baseline: Optional[Baseline] = None,
    rules_for: Any = None,
) -> AnalysisReport:
    """Analyze every ``*.py`` under ``paths`` with the per-path policy.

    ``rules_for`` maps a policy path to the rule objects that apply; it
    defaults to :func:`repro.analysis.policy.rules_for_path`.
    """
    if rules_for is None:
        from repro.analysis.policy import rules_for_path as rules_for  # noqa: F811 - default wiring

    report = AnalysisReport()
    all_findings: List[Finding] = []
    for filename in iter_python_files(paths):
        normalized = policy_path(filename)
        rules = rules_for(normalized)
        if not rules:
            continue
        report.files_checked += 1
        report.rules_run.update(rule.rule_id for rule in rules)
        findings, silenced = _analyze_one(filename, rules, path=normalized)
        report.suppressed_count += silenced
        for finding in findings:
            all_findings.append(finding)
            if baseline is not None and baseline.matches(finding):
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = baseline.unmatched(all_findings)
    return report
