"""CLI: ``python -m repro.analysis [--format text|json] [paths...]``.

Exit codes: 0 — clean (or every finding baselined/suppressed); 1 — new
findings or a stale baseline; 2 — usage or configuration error (unreadable
baseline, missing justification).  CI runs this as a blocking gate over
``src/repro``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.engine import Baseline, BaselineError, analyze_paths
from repro.analysis.rules import RULE_REGISTRY

DEFAULT_BASELINE = "analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Domain-aware static analysis for the repro codebase (REP001-REP006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write current findings to PATH as the new baseline and exit 0 "
        "(entries get a TODO justification you must edit)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    path = args.baseline
    if path is None:
        if os.path.exists(DEFAULT_BASELINE):
            path = DEFAULT_BASELINE
        else:
            return None
    return Baseline.load(path)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULE_REGISTRY):
            rule = RULE_REGISTRY[rule_id]
            print(f"{rule_id}: {rule.summary}")
        return 0

    try:
        baseline = _resolve_baseline(args)
    except (BaselineError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = analyze_paths(args.paths, baseline=baseline)

    if args.write_baseline:
        fresh = Baseline.from_findings(
            report.findings + report.baselined,
            justification="TODO: replace with why this finding is a false positive",
        )
        # Carry forward justifications for entries that still match.
        if baseline is not None:
            for key, why in baseline.entries.items():
                if key in fresh.entries:
                    fresh.entries[key] = why
        fresh.dump(args.write_baseline)
        print(
            f"wrote {len(fresh.entries)} baseline entr"
            f"{'y' if len(fresh.entries) == 1 else 'ies'} to {args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        for rule, path, snippet in report.stale_baseline:
            print(f"stale baseline entry: {rule} {path}: {snippet!r} no longer matches")
        status = "ok" if report.ok else "FAIL"
        print(
            f"{status}: {report.files_checked} files, "
            f"{len(report.rules_run)} rules, "
            f"{len(report.findings)} new finding(s), "
            f"{len(report.baselined)} baselined, "
            f"{report.suppressed_count} suppressed inline, "
            f"{len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'}"
        )

    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
