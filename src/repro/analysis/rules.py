"""The domain rule catalog: REP001–REP006.

Each rule is a pure function of one parsed file (an
:class:`~repro.analysis.engine.AnalysisContext`); which files a rule runs on
is decided by :mod:`repro.analysis.policy`.  Rules are deliberately
syntactic — no type inference, no cross-file analysis — so a finding is
always explainable by pointing at the flagged line.  The cost of that choice
is a small set of known false-positive shapes; those get inline
``# repro: noqa[RULE]`` with a justification comment, which is the review
surface the rules are designed around.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

from repro.analysis.engine import AnalysisContext, Finding
from repro.telemetry.names import ALL_NAMES, NAMES_BY_INSTRUMENT

__all__ = [
    "ALL_RULES",
    "RULE_REGISTRY",
    "Rule",
    "SecretHygieneRule",
    "DeterminismRule",
    "PickleSafetyRule",
    "LockDisciplineRule",
    "TelemetryNameRule",
    "ExceptionHygieneRule",
    "rule_instances",
]


class Rule:
    """Base class: subclasses set the id/summary/rationale and ``check``."""

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        raise NotImplementedError


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def _register(cls: Type[Rule]) -> Type[Rule]:
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


# ------------------------------------------------------------------ helpers


def _terminal_name(node: ast.AST) -> str:
    """The rightmost identifier of a Name/Attribute/Call chain, or ''."""
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _base_name(node: ast.AST) -> str:
    """The leftmost identifier of a Name/Attribute chain, or ''."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _walk_same_scope(statements: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class bodies.

    Code inside a nested ``def`` runs later, outside the enclosing ``with``
    block's dynamic extent — lock-discipline must not charge it to the lock.
    """
    stack: List[ast.AST] = list(statements)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ------------------------------------------------- REP001: secret hygiene


@_register
class SecretHygieneRule(Rule):
    rule_id = "REP001"
    summary = "secret-taxonomy identifiers must never reach log lines, f-strings, or exception text"
    rationale = (
        "The coordinator logging policy (PR 6) promises that the enrollment "
        "secret, handshake nonces, and MACs are never logged at any level; "
        "interpolating such an identifier into a log call, f-string, or "
        "raised exception message leaks key material into traces and crash "
        "reports that outlive the handshake."
    )

    #: Underscore-separated identifier parts that mark key material.
    TAXONOMY = frozenset({"secret", "nonce", "mac", "hmac", "privkey", "private"})
    #: ``secrets`` here is the stdlib CSPRNG module, not a value to protect.
    ALLOWED_NAMES = frozenset({"secrets"})
    LOG_METHODS = frozenset(
        {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
    )

    @classmethod
    def _is_secret_identifier(cls, name: str) -> bool:
        if not name or name in cls.ALLOWED_NAMES:
            return False
        parts = name.lower().lstrip("_").split("_")
        return any(part in cls.TAXONOMY for part in parts)

    def _secret_refs(self, node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and self._is_secret_identifier(child.id):
                yield child
            elif isinstance(child, ast.Attribute) and self._is_secret_identifier(child.attr):
                yield child

    def _is_log_call(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id == "print"
        if isinstance(func, ast.Attribute):
            if func.attr == "warn" and _base_name(func) == "warnings":
                return True
            if func.attr in self.LOG_METHODS:
                base = _terminal_name(func.value).lower()
                return "log" in base
        return False

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call) and self._is_log_call(node):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for ref in self._secret_refs(arg):
                        yield context.finding(
                            self.rule_id,
                            ref,
                            f"secret-taxonomy identifier {_terminal_name(ref)!r} "
                            f"interpolated into a log call",
                        )
            elif isinstance(node, ast.FormattedValue):
                for ref in self._secret_refs(node.value):
                    yield context.finding(
                        self.rule_id,
                        ref,
                        f"secret-taxonomy identifier {_terminal_name(ref)!r} "
                        f"formatted into an f-string",
                    )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                args: Iterable[ast.AST] = ()
                if isinstance(exc, ast.Call):
                    args = list(exc.args) + [kw.value for kw in exc.keywords]
                for arg in args:
                    # f-string args are caught by the FormattedValue branch;
                    # here we catch direct interpolation (%, +, str(secret)).
                    if isinstance(arg, ast.JoinedStr):
                        continue
                    for ref in self._secret_refs(arg):
                        yield context.finding(
                            self.rule_id,
                            ref,
                            f"secret-taxonomy identifier {_terminal_name(ref)!r} "
                            f"passed into a raised exception message",
                        )


# -------------------------------------------------- REP002: determinism


@_register
class DeterminismRule(Rule):
    rule_id = "REP002"
    summary = "no ambient randomness, wall-clock reads, or set-iteration order in deterministic paths"
    rationale = (
        "The tally must be bit-identical across serial, streaming, and "
        "cluster schedules; ambient random.*, time.time(), os.urandom(), "
        "datetime.now(), and iteration over sets (string hashes vary per "
        "process under hash randomization) all break replayability.  "
        "Randomness must flow through an injected random.Random (or the "
        "sanctioned `secrets` module for key generation)."
    )

    WALL_CLOCK = frozenset({"time", "time_ns"})
    DATETIME_FNS = frozenset({"now", "utcnow", "today"})
    RNG_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})

    def _check_call(self, context: AnalysisContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base == "random" and attr not in self.RNG_CONSTRUCTORS:
                yield context.finding(
                    self.rule_id,
                    node,
                    f"ambient random.{attr}() — randomness must come from an "
                    f"injected random.Random",
                )
            elif base == "time" and attr in self.WALL_CLOCK:
                yield context.finding(
                    self.rule_id,
                    node,
                    f"wall-clock time.{attr}() in a deterministic path — use an "
                    f"injected clock (time.monotonic is fine for timeouts)",
                )
            elif base == "os" and attr == "urandom":
                yield context.finding(
                    self.rule_id,
                    node,
                    "os.urandom() — use secrets.token_bytes() for key material "
                    "or an injected random.Random for replayable randomness",
                )
            elif attr in self.DATETIME_FNS and _terminal_name(func.value) in ("datetime", "date"):
                yield context.finding(
                    self.rule_id,
                    node,
                    f"wall-clock datetime.{attr}() in a deterministic path",
                )
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            if func.attr in self.DATETIME_FNS and func.value.attr in ("datetime", "date"):
                yield context.finding(
                    self.rule_id,
                    node,
                    f"wall-clock datetime.{func.attr}() in a deterministic path",
                )
        # list(set(...)) / tuple(set(...)) materializes hash order.
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and len(node.args) == 1
            and self._is_set_expr(node.args[0])
        ):
            yield context.finding(
                self.rule_id,
                node,
                f"{func.id}(set(...)) materializes set iteration order — "
                f"sort first (sorted(...)) to pin the order",
            )

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                for finding in self._check_call(context, node):
                    yield finding
            elif isinstance(node, ast.For) and self._is_set_expr(node.iter):
                yield context.finding(
                    self.rule_id,
                    node.iter,
                    "iterating a set literal — order follows string hash "
                    "randomization; iterate a sorted(...) copy",
                )
            elif isinstance(node, ast.comprehension) and self._is_set_expr(node.iter):
                yield context.finding(
                    self.rule_id,
                    node.iter,
                    "comprehension over a set expression — order follows string "
                    "hash randomization; iterate a sorted(...) copy",
                )


# ------------------------------------------------ REP003: pickle safety


@_register
class PickleSafetyRule(Rule):
    rule_id = "REP003"
    summary = "pickle deserialization only inside repro.cluster.protocol's restricted unpickler"
    rationale = (
        "pickle.loads executes arbitrary constructors; the cluster protocol "
        "funnels every untrusted frame through a globals-restricted "
        "Unpickler before authentication.  Any other deserialization site "
        "reopens the remote-code-execution hole that design closed."
    )

    FLAGGED = frozenset({"loads", "load", "Unpickler"})

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        from_pickle: Set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "pickle":
                from_pickle.update(
                    alias.asname or alias.name
                    for alias in node.names
                    if alias.name in self.FLAGGED
                )
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged: Optional[str] = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "pickle"
                and func.attr in self.FLAGGED
            ):
                flagged = f"pickle.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in from_pickle:
                flagged = f"pickle.{func.id}"
            if flagged:
                yield context.finding(
                    self.rule_id,
                    node,
                    f"{flagged}() outside repro.cluster.protocol — route "
                    f"deserialization through the restricted codec",
                )


# --------------------------------------------- REP004: lock discipline


@_register
class LockDisciplineRule(Rule):
    rule_id = "REP004"
    summary = "no executor fan-out, queue puts, socket I/O, or subprocess spawn under a held lock"
    rationale = (
        "The pool, pipeline, and cluster layers all take locks; a blocking "
        "call (bounded-queue put, socket send, pool.map waiting on workers "
        "that need the same lock) inside a `with lock:` body is a deadlock "
        "waiting for the right schedule.  Leaf locks that exist only to "
        "serialize one socket write are the known exception — annotate them "
        "inline with `# repro: noqa[REP004]` and a comment."
    )

    LOCKISH = ("lock", "cond", "mutex", "sem")
    BLOCKING_METHODS = frozenset(
        {
            "map",
            "starmap",
            "submit",
            "put",
            "put_nowait",
            "sendall",
            "recv",
            "accept",
            "connect",
            "makefile",
        }
    )
    FRAME_IO = frozenset({"send_frame", "recv_frame"})
    SUBPROCESS_FNS = frozenset({"Popen", "run", "call", "check_call", "check_output"})

    @classmethod
    def _is_lockish(cls, expr: ast.AST) -> bool:
        name = _terminal_name(expr).lower()
        return any(part in name for part in cls.LOCKISH)

    def _blocking_call(self, call: ast.Call) -> Optional[str]:
        func = call.func
        name = _terminal_name(func)
        if name in self.FRAME_IO:
            return f"{name}() (socket I/O)"
        if isinstance(func, ast.Attribute):
            if func.attr in self.BLOCKING_METHODS:
                kind = "queue put" if func.attr.startswith("put") else "blocking call"
                return f".{func.attr}() ({kind})"
            if func.attr in self.SUBPROCESS_FNS and _base_name(func) == "subprocess":
                return f"subprocess.{func.attr}() (subprocess spawn)"
        return None

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            lock_names = [
                _terminal_name(item.context_expr)
                for item in node.items
                if self._is_lockish(item.context_expr)
            ]
            if not lock_names:
                continue
            for inner in _walk_same_scope(node.body):
                if isinstance(inner, ast.Call):
                    described = self._blocking_call(inner)
                    if described:
                        yield context.finding(
                            self.rule_id,
                            inner,
                            f"{described} inside `with {lock_names[0]}:` — move the "
                            f"blocking call outside the critical section",
                        )


# --------------------------------------- REP005: telemetry name registry


@_register
class TelemetryNameRule(Rule):
    rule_id = "REP005"
    summary = "telemetry span/counter/gauge/histogram names must be literals from repro.telemetry.names"
    rationale = (
        "Serial and streaming schedules of the same tally must emit "
        "identical span names for trace diffing and the bench gates to "
        "compare like with like; a name interpolated at the call site can "
        "drift per schedule and leaks unbounded metric cardinality."
    )

    INSTRUMENTS = frozenset({"span", "counter", "gauge", "histogram"})

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "telemetry"
                and func.attr in self.INSTRUMENTS
            ):
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
                yield context.finding(
                    self.rule_id,
                    name_arg,
                    f"telemetry.{func.attr}() name must be a string literal, "
                    f"not a computed expression",
                )
                continue
            name = name_arg.value
            allowed = NAMES_BY_INSTRUMENT[func.attr]
            if name in allowed:
                continue
            if name in ALL_NAMES:
                yield context.finding(
                    self.rule_id,
                    name_arg,
                    f"{name!r} is registered for a different instrument than "
                    f"telemetry.{func.attr}() — likely a call-site typo",
                )
            else:
                yield context.finding(
                    self.rule_id,
                    name_arg,
                    f"{name!r} is not in repro.telemetry.names — register it "
                    f"there (one registry keeps schedules' traces comparable)",
                )


# ------------------------------------------ REP006: exception hygiene


@_register
class ExceptionHygieneRule(Rule):
    rule_id = "REP006"
    summary = "no bare except, and no silently swallowed domain exceptions"
    rationale = (
        "A bare `except:` eats KeyboardInterrupt and SystemExit; a "
        "`pass`-body handler for ClusterError/StopPipeline/etc. turns a "
        "protocol violation into a silent hang three layers up.  Transport "
        "teardown that also catches OSError, or handlers paired with a "
        "`finally:` cleanup, are the sanctioned shapes and stay unflagged."
    )

    DOMAIN = frozenset(
        {
            "ReproError",
            "ClusterError",
            "StopPipeline",
            "ConnectionClosed",
            "ProtocolError",
            "TallyError",
            "RegistrationError",
            "VerificationError",
            "LedgerError",
            "CoercionDetected",
        }
    )
    #: Catching any of these alongside a domain type marks transport cleanup.
    BROAD_COMPANIONS = frozenset({"OSError", "IOError", "EOFError", "Exception"})

    @staticmethod
    def _caught_names(type_node: ast.AST) -> List[str]:
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        return [_terminal_name(node) for node in nodes]

    @staticmethod
    def _is_pass_body(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or Ellipsis
            return False
        return True

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    yield context.finding(
                        self.rule_id,
                        handler,
                        "bare `except:` — it catches KeyboardInterrupt and "
                        "SystemExit; name the exceptions you mean",
                    )
                    continue
                if not self._is_pass_body(handler.body):
                    continue
                caught = self._caught_names(handler.type)
                if "BaseException" in caught:
                    yield context.finding(
                        self.rule_id,
                        handler,
                        "`except BaseException: pass` swallows interpreter "
                        "shutdown signals",
                    )
                    continue
                domain_hits = [name for name in caught if name in self.DOMAIN]
                if not domain_hits:
                    continue
                if any(name in self.BROAD_COMPANIONS for name in caught):
                    continue  # transport-teardown idiom: domain + OSError tuple
                if node.finalbody:
                    continue  # the finally block is the real handler
                yield context.finding(
                    self.rule_id,
                    handler,
                    f"{domain_hits[0]} swallowed with a pass-body handler — "
                    f"propagate it, log it, or pair the try with a finally",
                )


#: Every registered rule id, sorted — the "runs ≥6 rules" acceptance surface.
ALL_RULES: List[str] = sorted(RULE_REGISTRY)


def rule_instances(rule_ids: Iterable[str]) -> List[Rule]:
    """Instantiate the given rules (unknown ids raise KeyError loudly)."""
    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(set(rule_ids))]
