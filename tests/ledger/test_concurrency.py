"""Concurrency semantics of the ledger API.

Systematic-interleaving spirit: many producers race appends (threads and
asyncio tasks); afterwards the board must hold every record exactly once,
the hash chains must verify, and each producer's own appends must appear in
its submission order (sequence numbers are per-stream commit positions).
"""

import asyncio
import threading

import pytest

from repro.crypto.hashing import sha256
from repro.crypto.modp_group import testing_group
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.ledger import (
    AsyncIngestionFrontend,
    BallotRecord,
    BatchedBoard,
    BulletinBoard,
    MemoryBackend,
)
from repro.ledger.backends.batched import verify_batch_chain

NUM_THREADS = 8
PER_THREAD = 50


@pytest.fixture(scope="module")
def group():
    return testing_group()


@pytest.fixture(scope="module")
def keypair(group):
    return schnorr_keygen(group)


def make_ballot(group, keypair, index):
    return BallotRecord(
        credential_public_key=group.power(index + 1),
        ciphertext_c1=group.power(index + 2),
        ciphertext_c2=group.power(index + 3),
        signature=schnorr_sign(keypair, sha256(b"ballot", index.to_bytes(4, "big"))),
    )


def race_appends(board, group, keypair):
    """NUM_THREADS threads each append PER_THREAD distinct ballots; returns
    the per-thread list of (record, returned seq)."""
    results = [[] for _ in range(NUM_THREADS)]
    barrier = threading.Barrier(NUM_THREADS)

    def worker(thread_index):
        records = [
            make_ballot(group, keypair, thread_index * PER_THREAD + offset)
            for offset in range(PER_THREAD)
        ]
        barrier.wait()
        for record in records:
            results[thread_index].append((record, board.post_ballot(record)))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(NUM_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


class TestThreadedAppends:
    def test_memory_board_keeps_chain_and_ordering(self, group, keypair):
        board = BulletinBoard(MemoryBackend())
        results = race_appends(board, group, keypair)

        assert board.num_ballots == NUM_THREADS * PER_THREAD
        assert board.verify_all_chains()
        all_seqs = [seq for thread in results for _, seq in thread]
        assert sorted(all_seqs) == list(range(NUM_THREADS * PER_THREAD))
        for thread in results:
            seqs = [seq for _, seq in thread]
            assert seqs == sorted(seqs), "per-producer appends must commit in order"
        # The seq returned by each append is the record's actual position.
        ledger = board.ballots()
        for thread in results:
            for record, seq in thread:
                assert ledger[seq] == record

    def test_batched_board_keeps_chain_and_ordering(self, group, keypair):
        backend = BatchedBoard(MemoryBackend(), batch_size=32)
        board = BulletinBoard(backend)
        results = race_appends(board, group, keypair)
        board.flush()

        assert board.num_ballots == NUM_THREADS * PER_THREAD
        assert board.verify_all_chains()
        assert verify_batch_chain(backend.batches)
        assert sum(batch.num_records for batch in backend.batches) == NUM_THREADS * PER_THREAD
        ledger = board.ballots()
        for thread in results:
            for record, seq in thread:
                assert ledger[seq] == record

    def test_interval_flusher_drains_in_background(self, group, keypair):
        backend = BatchedBoard(MemoryBackend(), batch_size=10_000, flush_interval=0.02)
        board = BulletinBoard(backend)
        for index in range(25):
            board.post_ballot(make_ballot(group, keypair, index))
        deadline = threading.Event()
        for _ in range(100):  # up to ~2s for the flusher to fire
            if backend.inner.num_ballots == 25:
                break
            deadline.wait(0.02)
        board.close()
        assert backend.inner.num_ballots == 25
        assert board.verify_all_chains()


class TestAsyncIngestion:
    def test_concurrent_asyncio_casting_preserves_integrity(self, group, keypair):
        backend = BatchedBoard(MemoryBackend(), batch_size=16)
        frontend = AsyncIngestionFrontend(backend)
        records = [make_ballot(group, keypair, index) for index in range(120)]

        async def cast_all():
            seqs = await asyncio.gather(
                *(frontend.post_ballot(record) for record in records)
            )
            await frontend.drain()
            return seqs

        seqs = asyncio.run(cast_all())
        assert sorted(seqs) == list(range(120))
        assert backend.num_ballots == 120
        assert backend.verify_all_chains()
        # Event-loop submission order is commit order for a single-task gather.
        ledger = backend.read_ballots().records
        for record, seq in zip(records, seqs):
            assert ledger[seq] == record


class TestFlushFailureSafety:
    class _FlakyBackend(MemoryBackend):
        """Fails the first bulk append, then recovers (disk-full simulation)."""

        def __init__(self):
            super().__init__()
            self.failures_left = 1

        def append_ballots(self, records, payloads=None):
            if self.failures_left:
                self.failures_left -= 1
                raise OSError("simulated storage failure")
            return super().append_ballots(records, payloads=payloads)

    def test_failed_flush_keeps_buffered_records_for_retry(self, group, keypair):
        inner = self._FlakyBackend()
        backend = BatchedBoard(inner, batch_size=10_000)
        records = [make_ballot(group, keypair, index) for index in range(5)]
        seqs = [backend.append_ballot(record) for record in records]
        with pytest.raises(OSError):
            backend.flush()
        # Nothing lost, no batch digest committed for the failed attempt.
        assert backend.num_pending == 5
        assert backend.batches == []
        backend.flush()  # retry succeeds
        assert inner.num_ballots == 5
        assert backend.verify_all_chains()
        ledger = inner.read_ballots().records
        for record, seq in zip(records, seqs):
            assert ledger[seq] == record


class TestRollAtomicity:
    def test_duplicate_roll_batch_mutates_nothing(self):
        from repro.errors import LedgerError

        board = BulletinBoard(MemoryBackend())
        with pytest.raises(LedgerError):
            board.publish_electoral_roll(["a", "b", "a"])
        assert board.eligible_voters == []
        assert len(board.registration_log) == 0


class TestBatchedEqualsUnbatched:
    def test_flush_is_bit_for_bit_identical(self, group, keypair):
        records = [make_ballot(group, keypair, index) for index in range(40)]
        plain = BulletinBoard(MemoryBackend())
        batched = BulletinBoard(BatchedBoard(MemoryBackend(), batch_size=7))
        for record in records:
            plain.post_ballot(record)
            batched.post_ballot(record)
        batched.flush()

        assert batched.ballot_log.entries() == plain.ballot_log.entries()
        assert batched.ballot_log.head() == plain.ballot_log.head()
        assert batched.ballots() == plain.ballots()

    def test_reads_see_buffered_writes(self, group, keypair):
        backend = BatchedBoard(MemoryBackend(), batch_size=10_000)
        record = make_ballot(group, keypair, 0)
        backend.append_ballot(record)
        assert backend.num_pending in (0, 1)  # read below forces the barrier
        page = backend.read_ballots()
        assert page.records == [record]
        assert backend.num_pending == 0
