"""Cross-backend equivalence and SQLite persistence.

The contract every backend signs: the same sequence of accepted append
commands produces bit-identical hash chains and identical reads — so a full
election tallies and universally verifies the same regardless of where the
board stores its records.
"""

import random

import pytest

from repro.crypto.hashing import sha256
from repro.crypto.modp_group import testing_group
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.election import ElectionConfig, VotegralElection
from repro.errors import LedgerError
from repro.ledger import (
    BallotRecord,
    BatchedBoard,
    BulletinBoard,
    MemoryBackend,
    SQLiteBackend,
)

BACKEND_SPECS = ["memory", "sqlite", "batched:8", "batched:4:sqlite"]


@pytest.fixture(scope="module")
def group():
    return testing_group()


@pytest.fixture(scope="module")
def keypair(group):
    return schnorr_keygen(group)


def make_ballot(group, keypair, index, election_id="default"):
    return BallotRecord(
        credential_public_key=group.power(index + 1),
        ciphertext_c1=group.power(index + 2),
        ciphertext_c2=group.power(index + 3),
        signature=schnorr_sign(keypair, sha256(b"ballot", index.to_bytes(4, "big"))),
        election_id=election_id,
    )


class TestCrossBackendElections:
    """`ElectionConfig(board_spec=...)` end-to-end on every backend."""

    @pytest.fixture(scope="class")
    def reports(self):
        reports = {}
        for spec in BACKEND_SPECS:
            config = ElectionConfig(
                num_voters=4, num_options=2, proof_rounds=2, num_mixers=2, board_spec=spec
            )
            choices = {voter: index % 2 for index, voter in enumerate(config.voter_ids())}
            with VotegralElection(config) as election:
                reports[spec] = election.run(choices=choices, rng=random.Random(1234))
        return reports

    @pytest.mark.parametrize("spec", BACKEND_SPECS)
    def test_counts_match_intent_and_verify(self, reports, spec):
        report = reports[spec]
        assert report.counts_match_intent
        assert report.universally_verified
        assert report.result.num_counted == 4

    def test_tally_counts_identical_across_backends(self, reports):
        counts = {spec: report.result.counts for spec, report in reports.items()}
        reference = counts["memory"]
        assert all(value == reference for value in counts.values())

    def test_ledger_population_identical_across_backends(self, reports):
        sizes = {
            spec: (report.result.num_ballots_on_ledger, report.result.num_valid_ballots)
            for spec, report in reports.items()
        }
        reference = sizes["memory"]
        assert all(value == reference for value in sizes.values())


class TestIdenticalCommandStreams:
    """Identical appends ⇒ bit-identical chains, heads and reads."""

    def test_all_backends_produce_identical_chains(self, group, keypair, tmp_path):
        # One record sequence (signing is randomized, so records are built once).
        records = [
            make_ballot(group, keypair, index, election_id="A" if index % 3 else "B")
            for index in range(17)
        ]
        boards = {
            "memory": BulletinBoard(MemoryBackend()),
            "sqlite": BulletinBoard(SQLiteBackend(str(tmp_path / "chain.db"), group=group)),
            "batched": BulletinBoard(BatchedBoard(MemoryBackend(), batch_size=5)),
        }
        for board in boards.values():
            board.publish_electoral_roll([f"v{i}" for i in range(3)])
            for record in records:
                board.post_ballot(record)
            board.flush()
        reference = boards["memory"]
        for name, board in boards.items():
            assert board.ballot_log.entries() == reference.ballot_log.entries(), name
            assert board.ballot_log.head() == reference.ballot_log.head(), name
            assert board.registration_log.head() == reference.registration_log.head(), name
            assert board.ballots("A") == reference.ballots("A"), name
            assert board.verify_all_chains(), name
        for board in boards.values():
            board.close()


class TestSQLitePersistence:
    def test_reopen_restores_records_and_heads(self, group, keypair, tmp_path):
        path = str(tmp_path / "board.db")
        board = BulletinBoard(SQLiteBackend(path, group=group))
        board.publish_electoral_roll(["alice", "bob"])
        records = [make_ballot(group, keypair, i) for i in range(9)]
        for record in records:
            board.post_ballot(record)
        heads = (board.registration_log.head(), board.envelope_log.head(), board.ballot_log.head())
        board.close()

        reopened = BulletinBoard(SQLiteBackend(path, group=group))
        assert reopened.num_ballots == 9
        assert reopened.ballots() == records
        assert reopened.eligible_voters == ["alice", "bob"]
        assert (
            reopened.registration_log.head(),
            reopened.envelope_log.head(),
            reopened.ballot_log.head(),
        ) == heads
        assert reopened.verify_all_chains()
        reopened.close()

    def test_reopen_preserves_interleaved_stream_order(self, group, keypair, tmp_path):
        """Chains commit to the *interleaving* of streams (commitments/usages
        share L_E, roll entries/registrations share L_R); replay must keep it."""
        from repro.ledger import EnvelopeCommitmentRecord, EnvelopeUsageRecord
        from tests.ledger.test_api import make_registration

        path = str(tmp_path / "board.db")
        board = BulletinBoard(SQLiteBackend(path, group=group))
        board.publish_electoral_roll(["alice"])
        board.post_registration(make_registration(group, keypair, "alice"))
        board.publish_electoral_roll(["bob"])  # roll entry *after* a registration

        def commitment(tag):
            signature = schnorr_sign(keypair, sha256(b"env", tag))
            return EnvelopeCommitmentRecord(keypair.public, sha256(b"hash", tag), signature)

        first = commitment(b"one")
        board.post_envelope_commitment(first)
        board.post_envelope_usage(EnvelopeUsageRecord(7, first.challenge_hash))
        board.post_envelope_commitment(commitment(b"two"))  # commitment *after* a usage
        heads = (board.registration_log.head(), board.envelope_log.head())
        board.close()

        reopened = BulletinBoard(SQLiteBackend(path, group=group))
        assert (reopened.registration_log.head(), reopened.envelope_log.head()) == heads
        assert reopened.verify_all_chains()
        # And appends after reopen keep extending the same chains.
        reopened.post_registration(make_registration(group, keypair, "bob"))
        assert reopened.verify_all_chains()
        reopened.close()

    def test_reopen_without_group_is_rejected(self, group, keypair, tmp_path):
        path = str(tmp_path / "board.db")
        board = BulletinBoard(SQLiteBackend(path, group=group))
        board.post_ballot(make_ballot(group, keypair, 0))
        board.close()
        with pytest.raises(LedgerError):
            SQLiteBackend(path)

    def test_duplicate_challenge_still_detected_after_reopen(self, group, keypair, tmp_path):
        from repro.ledger import EnvelopeUsageRecord

        path = str(tmp_path / "board.db")
        usage = EnvelopeUsageRecord(challenge=42, challenge_hash=sha256(b"challenge"))
        board = BulletinBoard(SQLiteBackend(path, group=group))
        board.post_envelope_usage(usage)
        board.close()
        reopened = BulletinBoard(SQLiteBackend(path, group=group))
        assert reopened.is_challenge_used(usage.challenge_hash)
        with pytest.raises(LedgerError):
            reopened.post_envelope_usage(usage)
        reopened.close()
