"""The Votegral bulletin board and its three sub-ledgers."""

import pytest

from repro.crypto.elgamal import ElGamal
from repro.crypto.hashing import sha256
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.errors import LedgerError
from repro.ledger.bulletin_board import (
    BallotRecord,
    BulletinBoard,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    RegistrationRecord,
)


@pytest.fixture()
def populated_board(group):
    board = BulletinBoard()
    board.publish_electoral_roll(["alice", "bob"])
    return board


def _registration_record(group, voter_id="alice"):
    kiosk = schnorr_keygen(group)
    official = schnorr_keygen(group)
    elgamal = ElGamal(group)
    credential = schnorr_keygen(group)
    tag = elgamal.encrypt(group.power(5), credential.public)
    return RegistrationRecord(
        voter_id=voter_id,
        public_credential_c1=tag.c1,
        public_credential_c2=tag.c2,
        kiosk_public_key=kiosk.public,
        kiosk_signature=schnorr_sign(kiosk, b"ticket"),
        official_public_key=official.public,
        official_signature=schnorr_sign(official, b"approval"),
    )


class TestElectoralRoll:
    def test_roll_published(self, populated_board):
        assert populated_board.eligible_voters == ["alice", "bob"]
        assert populated_board.is_eligible("alice")
        assert not populated_board.is_eligible("mallory")

    def test_duplicate_roll_entry_rejected(self, populated_board):
        with pytest.raises(LedgerError):
            populated_board.publish_electoral_roll(["alice"])


class TestRegistrationLedger:
    def test_post_and_lookup(self, group, populated_board):
        record = _registration_record(group)
        populated_board.post_registration(record)
        assert populated_board.registration_for("alice") == record
        assert populated_board.num_registered == 1

    def test_ineligible_voter_rejected(self, group, populated_board):
        record = _registration_record(group, voter_id="mallory")
        with pytest.raises(LedgerError):
            populated_board.post_registration(record)

    def test_reregistration_supersedes(self, group, populated_board):
        first = _registration_record(group)
        second = _registration_record(group)
        populated_board.post_registration(first)
        populated_board.post_registration(second)
        assert populated_board.registration_for("alice") == second
        assert populated_board.num_registered == 1
        assert len(populated_board.registration_history("alice")) == 2

    def test_active_registrations_one_per_voter(self, group, populated_board):
        populated_board.post_registration(_registration_record(group, "alice"))
        populated_board.post_registration(_registration_record(group, "bob"))
        populated_board.post_registration(_registration_record(group, "alice"))
        assert len(populated_board.active_registrations()) == 2


class TestEnvelopeLedger:
    def test_commitment_roundtrip(self, group, populated_board):
        printer = schnorr_keygen(group)
        challenge_hash = sha256(b"challenge")
        record = EnvelopeCommitmentRecord(printer.public, challenge_hash, schnorr_sign(printer, challenge_hash))
        populated_board.post_envelope_commitment(record)
        assert populated_board.envelope_commitment(challenge_hash) == record
        assert populated_board.num_envelope_commitments == 1

    def test_usage_duplicate_detection(self, populated_board):
        usage = EnvelopeUsageRecord(challenge=123, challenge_hash=sha256(b"123"))
        populated_board.post_envelope_usage(usage)
        assert populated_board.is_challenge_used(sha256(b"123"))
        with pytest.raises(LedgerError):
            populated_board.post_envelope_usage(usage)

    def test_usage_count_is_aggregate_only(self, populated_board):
        for value in range(4):
            populated_board.post_envelope_usage(
                EnvelopeUsageRecord(challenge=value, challenge_hash=sha256(bytes([value])))
            )
        assert populated_board.num_challenges_used == 4


class TestBallotLedger:
    def test_post_and_filter_by_election(self, group, populated_board):
        credential = schnorr_keygen(group)
        elgamal = ElGamal(group)
        ciphertext = elgamal.encrypt(group.power(3), group.power(1))
        record = BallotRecord(
            credential_public_key=credential.public,
            ciphertext_c1=ciphertext.c1,
            ciphertext_c2=ciphertext.c2,
            signature=schnorr_sign(credential, b"ballot"),
            election_id="2026-06",
        )
        populated_board.post_ballot(record)
        assert populated_board.num_ballots == 1
        assert populated_board.ballots("2026-06") == [record]
        assert populated_board.ballots("other") == []

    def test_all_chains_verify(self, group, populated_board):
        populated_board.post_registration(_registration_record(group))
        assert populated_board.verify_all_chains()
