"""The versioned ledger API: cursors, views, spec parsing, deprecation shim."""

import pytest

from repro.crypto.hashing import sha256
from repro.crypto.modp_group import testing_group
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.errors import LedgerError
from repro.ledger import (
    LEDGER_API_VERSION,
    BallotRecord,
    BatchedBoard,
    BoardView,
    BulletinBoard,
    MemoryBackend,
    RegistrationRecord,
    SQLiteBackend,
    as_board_view,
    board_from_spec,
)


@pytest.fixture(scope="module")
def group():
    return testing_group()


@pytest.fixture(scope="module")
def keypair(group):
    return schnorr_keygen(group)


def make_ballot(group, keypair, index, election_id="default"):
    return BallotRecord(
        credential_public_key=group.power(index + 1),
        ciphertext_c1=group.power(index + 2),
        ciphertext_c2=group.power(index + 3),
        signature=schnorr_sign(keypair, sha256(b"ballot", index.to_bytes(4, "big"))),
        election_id=election_id,
    )


def make_registration(group, keypair, voter_id):
    signature = schnorr_sign(keypair, sha256(b"reg", voter_id.encode()))
    return RegistrationRecord(
        voter_id=voter_id,
        public_credential_c1=group.power(2),
        public_credential_c2=group.power(3),
        kiosk_public_key=keypair.public,
        kiosk_signature=signature,
        official_public_key=keypair.public,
        official_signature=signature,
    )


class TestSequenceNumbers:
    def test_appends_return_monotonic_sequence(self, group, keypair):
        board = BulletinBoard()
        seqs = [board.post_ballot(make_ballot(group, keypair, i)) for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_registration_sequence_independent_of_ballots(self, group, keypair):
        board = BulletinBoard()
        board.publish_electoral_roll(["alice", "bob"])
        board.post_ballot(make_ballot(group, keypair, 0))
        assert board.post_registration(make_registration(group, keypair, "alice")) == 0
        assert board.post_registration(make_registration(group, keypair, "bob")) == 1


class TestCursorReads:
    @pytest.fixture()
    def board(self, group, keypair):
        board = BulletinBoard()
        for index in range(10):
            election = "odd" if index % 2 else "even"
            board.post_ballot(make_ballot(group, keypair, index, election_id=election))
        return board

    def test_unfiltered_pagination_covers_stream(self, board):
        collected = []
        cursor = 0
        pages = 0
        while True:
            page = board.read_ballots(since=cursor, limit=3)
            collected.extend(page.records)
            cursor = page.next_cursor
            pages += 1
            if not page.has_more:
                break
        assert len(collected) == 10
        assert pages == 4
        assert collected == board.ballots()

    def test_filtered_pagination_matches_filtered_list(self, board):
        collected = []
        cursor = 0
        while True:
            page = board.read_ballots(since=cursor, limit=2, election_id="odd")
            collected.extend(page.records)
            cursor = page.next_cursor
            if not page.has_more:
                break
        assert collected == board.ballots("odd")
        assert len(collected) == 5

    def test_exhausted_cursor_is_terminal(self, board):
        page = board.read_ballots(since=0, limit=None)
        assert not page.has_more
        tail = board.read_ballots(since=page.next_cursor)
        assert tail.records == [] and not tail.has_more

    def test_cursor_resumes_after_new_appends(self, board, group, keypair):
        page = board.read_ballots()
        board.post_ballot(make_ballot(group, keypair, 99))
        fresh = board.read_ballots(since=page.next_cursor)
        assert len(fresh.records) == 1
        assert fresh.records[0].credential_public_key == group.power(100)

    def test_negative_cursor_rejected(self, board):
        with pytest.raises(LedgerError):
            board.read_ballots(since=-1)

    def test_zero_limit_makes_no_progress_and_skips_nothing(self, board):
        page = board.read_ballots(since=0, limit=0, election_id="odd")
        assert page.records == [] and page.has_more
        assert page.next_cursor == 0  # resuming from here still sees everything
        resumed = board.read_ballots(since=page.next_cursor, election_id="odd")
        assert resumed.records == board.ballots("odd")

    def test_unknown_election_reads_empty(self, board):
        page = board.read_ballots(election_id="no-such-election")
        assert page.records == [] and not page.has_more


class TestBoardView:
    def test_view_is_read_only_surface(self, group, keypair):
        view = BulletinBoard().view()
        assert isinstance(view, BoardView)
        assert not hasattr(view, "post_ballot")
        assert not hasattr(view, "append_ballot")

    def test_as_board_view_idempotent_and_polymorphic(self):
        backend = MemoryBackend()
        board = BulletinBoard(backend)
        view = as_board_view(board)
        assert as_board_view(view) is view
        assert isinstance(as_board_view(backend), BoardView)
        with pytest.raises(LedgerError):
            as_board_view(object())

    def test_view_rejects_future_api_version(self):
        backend = MemoryBackend()
        backend.api_version = LEDGER_API_VERSION + 1
        with pytest.raises(LedgerError):
            BoardView(backend)

    def test_view_reads_match_board(self, group, keypair):
        board = BulletinBoard()
        board.publish_electoral_roll(["alice"])
        board.post_registration(make_registration(group, keypair, "alice"))
        board.post_ballot(make_ballot(group, keypair, 4))
        view = board.view()
        assert view.num_registered == 1
        assert view.num_ballots == 1
        assert view.active_registrations() == board.active_registrations()
        assert view.registration_for("alice") is not None
        assert view.verify_all_chains()


class TestBoardFromSpec:
    def test_memory_spec(self):
        assert isinstance(board_from_spec("memory"), MemoryBackend)

    def test_sqlite_spec(self, group, tmp_path):
        backend = board_from_spec("sqlite", group=group)
        assert isinstance(backend, SQLiteBackend)
        path = tmp_path / "board.db"
        persistent = board_from_spec(f"sqlite:{path}", group=group)
        assert isinstance(persistent, SQLiteBackend)
        persistent.close()

    def test_batched_spec_with_size_and_inner(self, group):
        backend = board_from_spec("batched")
        assert isinstance(backend, BatchedBoard)
        assert backend.batch_size == BatchedBoard.DEFAULT_BATCH_SIZE
        sized = board_from_spec("batched:32")
        assert sized.batch_size == 32
        layered = board_from_spec("batched:16:sqlite", group=group)
        assert isinstance(layered.inner, SQLiteBackend)

    @pytest.mark.parametrize("spec", ["", "bogus", "memory:8", "batched:zero"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(LedgerError):
            board_from_spec(spec)


class TestDeprecationShim:
    def test_internal_attribute_access_warns_and_returns_snapshot(self, group, keypair):
        import repro.ledger.bulletin_board as bb_module

        bb_module._warned_internals.discard("_ballots")
        board = BulletinBoard()
        record = make_ballot(group, keypair, 1)
        board.post_ballot(record)
        with pytest.warns(DeprecationWarning):
            snapshot = board._ballots
        assert snapshot == [record]
        # Second access is silent (warn-once) but still served.
        import warnings

        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            board._ballots
        assert not [w for w in captured if w.category is DeprecationWarning]

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            BulletinBoard()._no_such_attribute

    def test_writes_to_shimmed_internals_are_refused(self, group, keypair):
        board = BulletinBoard()
        board.post_ballot(make_ballot(group, keypair, 0))
        # A silent shadow would freeze reads on a stale list; refuse instead.
        with pytest.raises(AttributeError):
            board._ballots = []
        board.post_ballot(make_ballot(group, keypair, 1))
        assert board.num_ballots == 2
