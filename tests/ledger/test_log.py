"""The hash-chained append-only log."""

import pytest

from repro.errors import LedgerError
from repro.ledger.log import AppendOnlyLog, LogEntry


class TestAppend:
    def test_entries_are_sequenced(self):
        log = AppendOnlyLog()
        first = log.append(b"a")
        second = log.append(b"b")
        assert (first.index, second.index) == (0, 1)
        assert len(log) == 2

    def test_chain_links_previous_hash(self):
        log = AppendOnlyLog()
        first = log.append(b"a")
        second = log.append(b"b")
        assert second.previous_hash == first.entry_hash

    def test_entry_lookup(self):
        log = AppendOnlyLog()
        entry = log.append(b"payload")
        assert log.entry(0) == entry
        with pytest.raises(LedgerError):
            log.entry(5)

    def test_iteration_order(self):
        log = AppendOnlyLog()
        payloads = [b"a", b"b", b"c"]
        for payload in payloads:
            log.append(payload)
        assert [entry.payload for entry in log] == payloads

    def test_observers_notified(self):
        log = AppendOnlyLog()
        seen = []
        log.subscribe(lambda entry: seen.append(entry.payload))
        log.append(b"x")
        log.append(b"y")
        assert seen == [b"x", b"y"]


class TestChainVerification:
    def test_honest_chain_verifies(self):
        log = AppendOnlyLog()
        for index in range(10):
            log.append(bytes([index]))
        assert log.verify_chain()

    def test_tampered_payload_detected(self):
        log = AppendOnlyLog()
        log.append(b"a")
        log.append(b"b")
        original = log.entry(0)
        log._entries[0] = LogEntry(0, b"tampered", original.previous_hash, original.entry_hash)
        assert not log.verify_chain()

    def test_reordered_entries_detected(self):
        log = AppendOnlyLog()
        log.append(b"a")
        log.append(b"b")
        log._entries.reverse()
        assert not log.verify_chain()

    def test_empty_log_verifies(self):
        assert AppendOnlyLog().verify_chain()


class TestHeadsAndProofs:
    def test_head_tracks_size_and_hash(self):
        log = AppendOnlyLog()
        empty_head = log.head()
        assert empty_head.size == 0
        entry = log.append(b"a")
        head = log.head()
        assert head.size == 1
        assert head.head_hash == entry.entry_hash

    def test_inclusion_proof_verifies(self):
        log = AppendOnlyLog()
        for index in range(6):
            log.append(bytes([index]))
        proof = log.inclusion_proof(2)
        assert AppendOnlyLog.verify_inclusion(proof)

    def test_inclusion_proof_under_old_head(self):
        log = AppendOnlyLog()
        for index in range(3):
            log.append(bytes([index]))
        old_head = log.head()
        log.append(b"later")
        proof = log.inclusion_proof(1, head=old_head)
        assert AppendOnlyLog.verify_inclusion(proof)

    def test_inclusion_of_entry_newer_than_head_rejected(self):
        log = AppendOnlyLog()
        log.append(b"a")
        old_head = log.head()
        log.append(b"b")
        with pytest.raises(LedgerError):
            log.inclusion_proof(1, head=old_head)

    def test_forged_inclusion_proof_rejected(self):
        log = AppendOnlyLog()
        for index in range(4):
            log.append(bytes([index]))
        proof = log.inclusion_proof(1)
        forged_entry = LogEntry(1, b"forged", proof.entry.previous_hash, proof.entry.entry_hash)
        from dataclasses import replace

        assert not AppendOnlyLog.verify_inclusion(replace(proof, entry=forged_entry))

    def test_consistency_between_heads(self):
        log = AppendOnlyLog()
        log.append(b"a")
        older = log.head()
        log.append(b"b")
        log.append(b"c")
        newer = log.head()
        intermediate = log.entries()[1:]
        assert AppendOnlyLog.verify_consistency(older, newer, intermediate)

    def test_inconsistent_heads_detected(self):
        log = AppendOnlyLog()
        log.append(b"a")
        older = log.head()
        other = AppendOnlyLog()
        other.append(b"x")
        other.append(b"y")
        newer = other.head()
        assert not AppendOnlyLog.verify_consistency(older, newer, other.entries()[1:])
