"""Cross-module integration scenarios."""


from repro.election import ElectionConfig, VotegralElection
from repro.registration.protocol import RegistrationSession, run_registration
from repro.registration.voter import Voter
from repro.tally.pipeline import TallyPipeline, verify_tally
from repro.voting.client import VotingClient


class TestMultiVoterElection:
    def test_ten_voter_election_with_fakes_and_verification(self):
        config = ElectionConfig(num_voters=10, num_options=3, proof_rounds=2, num_mixers=3)
        report = VotegralElection(config).run()
        assert report.counts_match_intent
        assert report.universally_verified
        assert report.result.num_counted == 10
        assert sum(report.result.counts.values()) == 10

    def test_ledger_chains_intact_after_full_election(self):
        config = ElectionConfig(num_voters=4, proof_rounds=2, num_mixers=2)
        election = VotegralElection(config)
        election.run()
        assert election.setup.board.verify_all_chains()


class TestCoercedVoterScenario:
    def test_coerced_voter_real_vote_counts_and_decoy_does_not(self, small_setup):
        """The paper's flagship scenario: Alice under coercion.

        Alice gives the coercer a fake credential, casts the coercer's demanded
        vote with it under supervision, then privately casts her real vote.
        Only the real vote is counted and the coercer cannot tell from the
        ledger which of the two ballots counted.
        """
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=1))
        client = VotingClient(
            group=small_setup.group,
            board=small_setup.board,
            authority_public_key=small_setup.authority_public_key,
        )
        for report in outcome.activation_reports:
            client.add_credential(report.credential)

        client.cast_fake(0, num_options=2)   # coercer watches this one
        client.cast_real(1, num_options=2)   # cast in private

        # Two more honest voters provide the statistical cover.
        for voter_id, choice in (("bob", 0), ("carol", 1)):
            other = run_registration(small_setup, Voter(voter_id, num_fake_credentials=1))
            other_client = VotingClient(
                group=small_setup.group,
                board=small_setup.board,
                authority_public_key=small_setup.authority_public_key,
            )
            for report in other.activation_reports:
                other_client.add_credential(report.credential)
            other_client.cast_real(choice, num_options=2)

        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.counts == {0: 1, 1: 2}          # Alice's real vote counted
        assert result.num_discarded == 1              # the coerced decoy did not
        assert verify_tally(small_setup.group, small_setup.authority, small_setup.board, result)

    def test_reregistration_invalidates_stolen_credential(self, small_setup):
        """Impersonation recovery (Appendix J): after re-registering, ballots
        cast with the earlier credential no longer count."""
        first = run_registration(small_setup, Voter("alice", num_fake_credentials=0))
        stolen_client = VotingClient(
            group=small_setup.group,
            board=small_setup.board,
            authority_public_key=small_setup.authority_public_key,
        )
        for report in first.activation_reports:
            stolen_client.add_credential(report.credential)

        # Alice re-registers (new credential supersedes the old record).
        session = RegistrationSession(setup=small_setup)
        second = session.register(Voter("alice", num_fake_credentials=0))
        new_client = VotingClient(
            group=small_setup.group,
            board=small_setup.board,
            authority_public_key=small_setup.authority_public_key,
        )
        for report in second.activation_reports:
            new_client.add_credential(report.credential)

        stolen_client.cast_real(0, 2)   # the thief votes with the old credential
        new_client.cast_real(1, 2)      # Alice votes with the new one

        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.counts == {0: 0, 1: 1}


class TestCredentialReuseAcrossElections:
    def test_same_credential_votes_in_two_elections(self, small_setup):
        """Registration is amortized: the same credential casts ballots in
        successive elections, each tallied independently."""
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=0))
        client = VotingClient(
            group=small_setup.group,
            board=small_setup.board,
            authority_public_key=small_setup.authority_public_key,
        )
        for report in outcome.activation_reports:
            client.add_credential(report.credential)

        client.cast_real(0, 2, election_id="spring")
        client.cast_real(1, 2, election_id="autumn")

        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        spring = pipeline.run(small_setup.board, num_options=2, election_id="spring")
        autumn = pipeline.run(small_setup.board, num_options=2, election_id="autumn")
        assert spring.counts == {0: 1, 1: 0}
        assert autumn.counts == {0: 0, 1: 1}
