"""Engine behavior: inline suppression, baselines, policy routing, and the
path walker — everything between a rule and the CLI's exit code."""

import json

import pytest

from repro.analysis.engine import (
    Baseline,
    BaselineError,
    Finding,
    analyze_file,
    analyze_paths,
    policy_path,
)
from repro.analysis.policy import DEFAULT_RULES, rule_ids_for_path, rules_for_path
from repro.analysis.rules import rule_instances

VIOLATION = "import pickle\n\n\ndef decode(blob):\n    return pickle.loads(blob)\n"


def run(source, rule_ids=("REP003",), path="repro/cluster/module.py"):
    return analyze_file("<fixture>", rule_instances(rule_ids), path=path, source=source)


class TestInlineSuppression:
    def test_targeted_noqa_suppresses_only_named_rule(self):
        source = VIOLATION.replace(
            "pickle.loads(blob)", "pickle.loads(blob)  # repro: noqa[REP003]"
        )
        assert run(source) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        source = VIOLATION.replace(
            "pickle.loads(blob)", "pickle.loads(blob)  # repro: noqa[REP004]"
        )
        assert len(run(source)) == 1

    def test_blanket_noqa_suppresses_everything(self):
        source = VIOLATION.replace(
            "pickle.loads(blob)", "pickle.loads(blob)  # repro: noqa"
        )
        assert run(source) == []

    def test_multi_rule_noqa_list(self):
        source = VIOLATION.replace(
            "pickle.loads(blob)", "pickle.loads(blob)  # repro: noqa[REP001, REP003]"
        )
        assert run(source) == []

    def test_noqa_on_a_different_line_does_not_suppress(self):
        source = "import pickle  # repro: noqa[REP003]\n" + VIOLATION.split("\n", 1)[1]
        assert len(run(source)) == 1


class TestBaseline:
    def _finding(self):
        (finding,) = run(VIOLATION)
        return finding

    def test_round_trip_through_disk(self, tmp_path):
        finding = self._finding()
        baseline = Baseline.from_findings([finding], justification="known shim")
        target = tmp_path / "baseline.json"
        baseline.dump(str(target))
        loaded = Baseline.load(str(target))
        assert loaded.matches(finding)
        assert loaded.entries[finding.fingerprint()] == "known shim"

    def test_fingerprint_survives_line_drift(self):
        finding = self._finding()
        baseline = Baseline.from_findings([finding], justification="known shim")
        drifted = run("# a new leading comment\n\n" + VIOLATION)[0]
        assert drifted.line != finding.line
        assert baseline.matches(drifted)

    def test_load_rejects_missing_justification(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({
            "version": 1,
            "findings": [{"rule": "REP003", "path": "x.py", "snippet": "s", "justification": "  "}],
        }))
        with pytest.raises(BaselineError, match="justification"):
            Baseline.load(str(target))

    def test_load_rejects_malformed_shape(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 1, "findings": [{"rule": "REP003"}]}))
        with pytest.raises(BaselineError, match="malformed"):
            Baseline.load(str(target))

    def test_stale_entries_reported(self):
        ghost = Finding(
            rule_id="REP003", path="repro/gone.py", line=1, col=0,
            message="m", snippet="pickle.loads(x)",
        )
        baseline = Baseline.from_findings([ghost], justification="was real once")
        assert baseline.unmatched([self._finding()]) == [ghost.fingerprint()]


class TestPolicy:
    def test_cluster_gets_the_full_set(self):
        assert rule_ids_for_path("repro/cluster/worker.py") == {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        }

    def test_protocol_module_exempt_from_pickle_rule_only(self):
        ids = rule_ids_for_path("repro/cluster/protocol.py")
        assert "REP003" not in ids
        assert "REP001" in ids and "REP004" in ids

    def test_telemetry_exempt_from_determinism_and_name_registry(self):
        ids = rule_ids_for_path("repro/telemetry/core.py")
        assert "REP002" not in ids and "REP005" not in ids
        assert "REP003" in ids

    def test_tests_get_no_rules(self):
        assert rule_ids_for_path("tests/analysis/test_rules.py") == frozenset()
        assert rules_for_path("tests/analysis/test_rules.py") == ()

    def test_unmatched_paths_get_the_default_set(self):
        assert rule_ids_for_path("repro/errors.py") == DEFAULT_RULES

    def test_rule_objects_cached_per_rule_set(self):
        assert rules_for_path("repro/crypto/elgamal.py") is rules_for_path(
            "repro/registration/kiosk.py"
        )


class TestPolicyPath:
    def test_src_layout_normalized(self):
        assert policy_path("/root/repo/src/repro/cluster/worker.py") == (
            "repro/cluster/worker.py"
        )

    def test_tests_anchor_kept(self):
        assert policy_path("tests/cluster/test_coordinator.py") == (
            "tests/cluster/test_coordinator.py"
        )


class TestAnalyzePaths:
    def _tree(self, tmp_path):
        package = tmp_path / "repro" / "cluster"
        package.mkdir(parents=True)
        (package / "clean.py").write_text("def add(a, b):\n    return a + b\n")
        (package / "dirty.py").write_text(VIOLATION)
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_dirty.py").write_text(VIOLATION)  # tests: no rules apply
        return tmp_path

    def test_policy_routes_findings_and_skips_tests(self, tmp_path):
        report = analyze_paths([str(self._tree(tmp_path))])
        assert [f.rule_id for f in report.findings] == ["REP003"]
        assert report.findings[0].path == "repro/cluster/dirty.py"
        assert report.files_checked == 2  # the tests file matched zero rules
        assert not report.ok

    def test_baselined_finding_passes_the_gate(self, tmp_path):
        tree = self._tree(tmp_path)
        first = analyze_paths([str(tree)])
        baseline = Baseline.from_findings(first.findings, justification="fixture")
        second = analyze_paths([str(tree)], baseline=baseline)
        assert second.ok
        assert [f.rule_id for f in second.baselined] == ["REP003"]
        assert second.findings == [] and second.stale_baseline == []

    def test_stale_baseline_fails_the_gate(self, tmp_path):
        tree = self._tree(tmp_path)
        baseline = Baseline.from_findings(
            analyze_paths([str(tree)]).findings, justification="fixture"
        )
        (tree / "repro" / "cluster" / "dirty.py").write_text("x = 1\n")
        report = analyze_paths([str(tree)], baseline=baseline)
        assert report.findings == []
        assert len(report.stale_baseline) == 1
        assert not report.ok

    def test_report_json_round_trips(self, tmp_path):
        report = analyze_paths([str(self._tree(tmp_path))])
        decoded = json.loads(json.dumps(report.to_dict()))
        assert decoded["ok"] is False
        assert decoded["findings"][0]["rule"] == "REP003"
        assert decoded["findings"][0]["path"] == "repro/cluster/dirty.py"
        assert set(decoded["rules_run"]) >= {"REP003"}
