"""Per-rule fixtures: each REP rule has at least one triggering and one
non-triggering source fragment, run through the real engine entry point."""

from textwrap import dedent

from repro.analysis.engine import analyze_file
from repro.analysis.rules import ALL_RULES, RULE_REGISTRY, rule_instances


def run_rule(rule_id, source, path="repro/cluster/module.py"):
    return analyze_file(
        "<fixture>", rule_instances([rule_id]), path=path, source=dedent(source)
    )


def test_registry_has_the_six_domain_rules():
    assert ALL_RULES == ["REP001", "REP002", "REP003", "REP004", "REP005", "REP006"]
    for rule_id in ALL_RULES:
        rule = RULE_REGISTRY[rule_id]
        assert rule.rule_id == rule_id
        assert rule.summary and rule.rationale


class TestSecretHygiene:
    def test_secret_in_log_call_flagged(self):
        findings = run_rule("REP001", """\
            import logging
            logger = logging.getLogger(__name__)

            def enroll(secret, worker_id):
                logger.info("enrolling %s with %s", worker_id, secret)
        """)
        assert [f.rule_id for f in findings] == ["REP001"]
        assert "'secret'" in findings[0].message

    def test_nonce_in_fstring_flagged(self):
        findings = run_rule("REP001", """\
            def describe(challenge_nonce):
                return f"challenge was {challenge_nonce}"
        """)
        assert len(findings) == 1 and "f-string" in findings[0].message

    def test_mac_in_exception_message_flagged(self):
        findings = run_rule("REP001", """\
            def verify(mac_tag):
                raise ValueError("bad tag: " + repr(mac_tag))
        """)
        assert len(findings) == 1 and "exception" in findings[0].message

    def test_identity_only_logging_clean(self):
        findings = run_rule("REP001", """\
            import logging
            import secrets
            logger = logging.getLogger(__name__)

            def enroll(worker_id):
                token = secrets.token_bytes(16)
                logger.info("worker %s enrolled", worker_id)
                return token
        """)
        assert findings == []


class TestDeterminism:
    def test_ambient_random_and_wall_clock_flagged(self):
        findings = run_rule("REP002", """\
            import os, random, time

            def shuffle(items):
                random.shuffle(items)
                started = time.time()
                seed = os.urandom(16)
                return items, started, seed
        """)
        assert [f.rule_id for f in findings] == ["REP002"] * 3

    def test_set_iteration_flagged(self):
        findings = run_rule("REP002", """\
            def orders(items):
                for item in set(items):
                    yield item
                return list(set(items))
        """)
        assert len(findings) == 2

    def test_injected_rng_monotonic_and_sorted_clean(self):
        findings = run_rule("REP002", """\
            import random, secrets, time

            def shuffle(items, rng):
                rng = rng or random.Random(7)
                rng.shuffle(items)
                deadline = time.monotonic() + 5
                key = secrets.token_bytes(32)
                return sorted(set(items)), deadline, key
        """)
        assert findings == []


class TestPickleSafety:
    def test_pickle_loads_flagged(self):
        findings = run_rule("REP003", """\
            import pickle

            def decode(blob):
                return pickle.loads(blob)
        """)
        assert len(findings) == 1 and "pickle.loads" in findings[0].message

    def test_from_import_alias_flagged(self):
        findings = run_rule("REP003", """\
            from pickle import loads as unpickle

            def decode(blob):
                return unpickle(blob)
        """)
        assert len(findings) == 1

    def test_dumps_and_json_loads_clean(self):
        findings = run_rule("REP003", """\
            import json, pickle

            def encode(obj, blob):
                return pickle.dumps(obj), json.loads(blob)
        """)
        assert findings == []


class TestLockDiscipline:
    def test_queue_put_under_lock_flagged(self):
        findings = run_rule("REP004", """\
            def push(self, item):
                with self._lock:
                    self._queue.put(item)
        """)
        assert len(findings) == 1 and "queue put" in findings[0].message

    def test_socket_io_and_subprocess_under_lock_flagged(self):
        findings = run_rule("REP004", """\
            import subprocess

            def pump(self, frame):
                with self._send_lock:
                    send_frame(self._sock, frame)
                    subprocess.run(["true"])
        """)
        assert len(findings) == 2

    def test_nested_def_body_not_charged_to_lock(self):
        findings = run_rule("REP004", """\
            def plan(self, item):
                with self._lock:
                    def later():
                        self._queue.put(item)
                    return later
        """)
        assert findings == []

    def test_non_lock_context_manager_clean(self):
        findings = run_rule("REP004", """\
            def write(self, path, item):
                with open(path, "w") as handle:
                    self._queue.put(item)
                    handle.write("x")
        """)
        assert findings == []


class TestTelemetryNames:
    def test_unregistered_name_flagged(self):
        findings = run_rule("REP005", """\
            from repro import telemetry

            def work():
                with telemetry.span("my.adhoc.name"):
                    pass
        """)
        assert len(findings) == 1 and "not in repro.telemetry.names" in findings[0].message

    def test_wrong_instrument_flagged_as_typo(self):
        # "ledger.flush" is a registered *span*; counting it is a call-site typo.
        findings = run_rule("REP005", """\
            from repro import telemetry

            def work():
                telemetry.counter("ledger.flush")
        """)
        assert len(findings) == 1 and "different instrument" in findings[0].message

    def test_computed_name_flagged(self):
        findings = run_rule("REP005", """\
            from repro import telemetry

            def work(stage):
                telemetry.counter("stage." + stage)
        """)
        assert len(findings) == 1 and "literal" in findings[0].message

    def test_registered_names_clean(self):
        findings = run_rule("REP005", """\
            from repro import telemetry

            def work(n):
                telemetry.counter("cluster.enroll", worker="w1")
                telemetry.histogram("ledger.flush.records", n, backend="batched")
                with telemetry.span("ledger.flush", backend="batched"):
                    pass
        """)
        assert findings == []


class TestExceptionHygiene:
    def test_bare_except_flagged(self):
        findings = run_rule("REP006", """\
            def run(task):
                try:
                    task()
                except:
                    pass
        """)
        assert len(findings) == 1 and "bare" in findings[0].message

    def test_swallowed_domain_exception_flagged(self):
        findings = run_rule("REP006", """\
            from repro.errors import ClusterError

            def run(task):
                try:
                    task()
                except ClusterError:
                    pass
        """)
        assert len(findings) == 1 and "ClusterError" in findings[0].message

    def test_base_exception_pass_flagged(self):
        findings = run_rule("REP006", """\
            def run(task):
                try:
                    task()
                except BaseException:
                    pass
        """)
        assert len(findings) == 1

    def test_transport_teardown_tuple_clean(self):
        findings = run_rule("REP006", """\
            from repro.errors import ClusterError

            def close(sock):
                try:
                    sock.close()
                except (ClusterError, OSError):
                    pass
        """)
        assert findings == []

    def test_finally_paired_handler_clean(self):
        findings = run_rule("REP006", """\
            from repro.errors import ClusterError

            def run(task, cleanup):
                try:
                    task()
                except ClusterError:
                    pass
                finally:
                    cleanup()
        """)
        assert findings == []

    def test_handled_domain_exception_clean(self):
        findings = run_rule("REP006", """\
            from repro.errors import ClusterError

            def run(task, log):
                try:
                    task()
                except ClusterError as exc:
                    log.warning("task failed: %s", exc)
                    raise
        """)
        assert findings == []
