"""The ``python -m repro.analysis`` gate: exit codes, formats, baselines."""

import json
import subprocess
import sys

from repro.analysis.__main__ import main

VIOLATION = "import pickle\n\n\ndef decode(blob):\n    return pickle.loads(blob)\n"


def make_tree(tmp_path, dirty=True):
    package = tmp_path / "repro" / "cluster"
    package.mkdir(parents=True)
    (package / "module.py").write_text(VIOLATION if dirty else "x = 1\n")
    return str(tmp_path)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        assert main(["--no-baseline", make_tree(tmp_path, dirty=False)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main(["--no-baseline", make_tree(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP003" in out and "FAIL" in out

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        code = main(["--baseline", str(bad), make_tree(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_baseline_without_justification_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({
            "version": 1,
            "findings": [{"rule": "REP003", "path": "p", "snippet": "s", "justification": ""}],
        }))
        assert main(["--baseline", str(bad), make_tree(tmp_path)]) == 2


class TestBaselineFlow:
    def test_write_then_gate_passes_then_goes_stale(self, tmp_path, capsys):
        tree = make_tree(tmp_path)
        baseline = tmp_path / "baseline.json"

        assert main(["--write-baseline", str(baseline), tree]) == 0
        written = json.loads(baseline.read_text())
        assert written["version"] == 1 and len(written["findings"]) == 1
        assert "TODO" in written["findings"][0]["justification"]

        # Gated against the fresh baseline: the old finding no longer fails.
        assert main(["--baseline", str(baseline), tree]) == 0

        # Fix the code: the entry goes stale and the gate fails until the
        # baseline shrinks — baselines never rot silently.
        (tmp_path / "repro" / "cluster" / "module.py").write_text("x = 1\n")
        capsys.readouterr()
        assert main(["--baseline", str(baseline), tree]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_rewrite_carries_forward_existing_justifications(self, tmp_path):
        tree = make_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["--write-baseline", str(baseline), tree])
        written = json.loads(baseline.read_text())
        written["findings"][0]["justification"] = "reviewed: restricted shim"
        baseline.write_text(json.dumps(written))

        assert main(["--baseline", str(baseline), "--write-baseline", str(baseline), tree]) == 0
        rewritten = json.loads(baseline.read_text())
        assert rewritten["findings"][0]["justification"] == "reviewed: restricted shim"


class TestOutputFormats:
    def test_json_format_round_trips(self, tmp_path, capsys):
        assert main(["--no-baseline", "--format", "json", make_tree(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        (finding,) = report["findings"]
        assert finding["rule"] == "REP003"
        assert finding["path"] == "repro/cluster/module.py"
        assert finding["snippet"] == "return pickle.loads(blob)"

    def test_text_format_renders_clickable_locations(self, tmp_path, capsys):
        main(["--no-baseline", make_tree(tmp_path)])
        assert "repro/cluster/module.py:5:12: REP003" in capsys.readouterr().out

    def test_list_rules_names_all_six(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out


class TestRepositoryGate:
    def test_src_repro_is_clean_under_the_checked_in_baseline(self):
        """The acceptance check itself: the shipped tree passes the gate."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--format", "json", "src/repro"],
            capture_output=True, text=True, cwd="/root/repo",
        )
        assert result.returncode == 0, result.stdout + result.stderr
        report = json.loads(result.stdout)
        assert report["ok"] is True
        assert len(report["rules_run"]) == 6
