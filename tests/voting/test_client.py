"""The voting client: casting with real and fake credentials, history."""

import pytest

from repro.errors import ProtocolError
from repro.registration.protocol import run_registration
from repro.registration.voter import Voter
from repro.voting.client import VotingClient


@pytest.fixture()
def registered_client(small_setup):
    outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=1))
    client = VotingClient(
        group=small_setup.group,
        board=small_setup.board,
        authority_public_key=small_setup.authority_public_key,
    )
    for report in outcome.activation_reports:
        client.add_credential(report.credential)
    return client


class TestCasting:
    def test_cast_real_posts_ballot(self, small_setup, registered_client):
        registered_client.cast_real(1, num_options=2)
        assert small_setup.board.num_ballots == 1

    def test_history_records_ledger_sequence(self, small_setup, registered_client):
        registered_client.cast_real(1, num_options=2)
        registered_client.cast_fake(0, num_options=2)
        seqs = [entry.ledger_seq for entry in registered_client.voting_history()]
        assert seqs == [0, 1]
        # The receipt locates the ballot with a single cursor read.
        page = small_setup.board.read_ballots(since=seqs[0], limit=1)
        assert page.records[0].credential_public_key == registered_client.real_credential().public_key

    def test_cast_fake_posts_indistinguishable_ballot(self, small_setup, registered_client):
        real = registered_client.cast_real(1, 2)
        fake = registered_client.cast_fake(0, 2)
        records = small_setup.board.ballots()
        assert len(records) == 2
        # Both ballots carry a credential key and a valid signature; nothing on
        # the record reveals which credential is real.
        assert {type(r.credential_public_key) for r in records} == {type(real.credential_public_key)}

    def test_cast_with_explicit_credential(self, registered_client):
        fake_credential = registered_client.fake_credentials()[0]
        ballot = registered_client.cast(0, 2, credential=fake_credential)
        assert ballot.credential_public_key == fake_credential.public_key

    def test_cast_fake_without_fakes_raises(self, small_setup):
        outcome = run_registration(small_setup, Voter("bob", num_fake_credentials=0))
        client = VotingClient(
            group=small_setup.group,
            board=small_setup.board,
            authority_public_key=small_setup.authority_public_key,
        )
        for report in outcome.activation_reports:
            client.add_credential(report.credential)
        with pytest.raises(ProtocolError):
            client.cast_fake(0, 2)

    def test_client_without_real_credential_raises(self, small_setup):
        client = VotingClient(
            group=small_setup.group,
            board=small_setup.board,
            authority_public_key=small_setup.authority_public_key,
        )
        with pytest.raises(ProtocolError):
            client.cast_real(0, 2)


class TestVotingHistory:
    def test_history_records_real_and_fake(self, registered_client):
        registered_client.cast_real(1, 2, election_id="june")
        registered_client.cast_fake(0, 2, election_id="june")
        history = registered_client.voting_history("june")
        assert len(history) == 2
        assert {entry.was_real_credential for entry in history} == {True, False}

    def test_history_filtered_by_election(self, registered_client):
        registered_client.cast_real(1, 2, election_id="june")
        assert registered_client.voting_history("december") == []

    def test_full_history(self, registered_client):
        registered_client.cast_real(1, 2, election_id="a")
        registered_client.cast_fake(0, 2, election_id="b")
        assert len(registered_client.voting_history()) == 2
