"""Ballot formation, well-formedness proofs and verification."""

import pytest

from repro.crypto.schnorr import schnorr_keygen
from repro.errors import VerificationError
from repro.voting.ballot import (
    Ballot,
    assert_valid_ballot,
    make_ballot,
    prove_wellformedness,
    verify_ballot,
    verify_wellformedness,
)


@pytest.fixture()
def credential(group):
    return schnorr_keygen(group)


@pytest.fixture()
def authority_key(dkg):
    return dkg.public_key


class TestBallotRoundtrip:
    def test_valid_ballot_verifies(self, group, dkg, credential):
        ballot = make_ballot(group, dkg.public_key, credential, choice=1, num_options=3)
        assert verify_ballot(group, dkg.public_key, ballot, num_options=3)

    def test_ballot_decrypts_to_choice(self, group, dkg, credential):
        ballot = make_ballot(group, dkg.public_key, credential, choice=2, num_options=3)
        assert dkg.decrypt(ballot.ciphertext) == group.encode_int(2)

    def test_every_choice_in_range_works(self, group, dkg, credential):
        for choice in range(4):
            ballot = make_ballot(group, dkg.public_key, credential, choice, num_options=4)
            assert verify_ballot(group, dkg.public_key, ballot, num_options=4)

    def test_choice_out_of_range_rejected(self, group, dkg, credential):
        with pytest.raises(ValueError):
            make_ballot(group, dkg.public_key, credential, choice=5, num_options=3)

    def test_ballot_record_conversion(self, group, dkg, credential):
        ballot = make_ballot(group, dkg.public_key, credential, 0, 2, election_id="june")
        record = ballot.to_record()
        assert record.election_id == "june"
        assert record.credential_public_key == credential.public


class TestSignatureBinding:
    def test_signature_by_other_credential_rejected(self, group, dkg, credential):
        other = schnorr_keygen(group)
        ballot = make_ballot(group, dkg.public_key, credential, 1, 2)
        forged = Ballot(
            ciphertext=ballot.ciphertext,
            credential_public_key=other.public,
            signature=ballot.signature,
            wellformedness=ballot.wellformedness,
            key_proof=ballot.key_proof,
        )
        assert not verify_ballot(group, dkg.public_key, forged, 2)

    def test_election_id_is_signed(self, group, dkg, credential):
        ballot = make_ballot(group, dkg.public_key, credential, 1, 2, election_id="a")
        forged = Ballot(
            ciphertext=ballot.ciphertext,
            credential_public_key=ballot.credential_public_key,
            signature=ballot.signature,
            wellformedness=ballot.wellformedness,
            key_proof=ballot.key_proof,
            election_id="b",
        )
        assert not verify_ballot(group, dkg.public_key, forged, 2)

    def test_key_proof_for_wrong_key_rejected(self, group, dkg, credential):
        from repro.crypto.dlog_proof import prove_dlog

        other = schnorr_keygen(group)
        ballot = make_ballot(group, dkg.public_key, credential, 1, 2)
        forged = Ballot(
            ciphertext=ballot.ciphertext,
            credential_public_key=ballot.credential_public_key,
            signature=ballot.signature,
            wellformedness=ballot.wellformedness,
            key_proof=prove_dlog(group.generator, other.secret, context=b"ballot-credential-key"),
        )
        assert not verify_ballot(group, dkg.public_key, forged, 2)

    def test_assert_helper_raises(self, group, dkg, credential):
        ballot = make_ballot(group, dkg.public_key, credential, 1, 2)
        broken = Ballot(
            ciphertext=ballot.ciphertext,
            credential_public_key=ballot.credential_public_key,
            signature=ballot.signature,
            wellformedness=ballot.wellformedness,
            key_proof=ballot.key_proof,
            election_id="tampered",
        )
        with pytest.raises(VerificationError):
            assert_valid_ballot(group, dkg.public_key, broken, 2)


class TestWellformedness:
    def test_proof_for_each_option(self, group, dkg):
        from repro.crypto.elgamal import ElGamal

        elgamal = ElGamal(group)
        randomness = group.random_scalar()
        ciphertext = elgamal.encrypt_int(dkg.public_key, 1, randomness)
        proof = prove_wellformedness(group, dkg.public_key, ciphertext, 1, randomness, 3)
        assert verify_wellformedness(group, dkg.public_key, ciphertext, proof, 3)

    def test_out_of_range_plaintext_cannot_be_proven(self, group, dkg):
        """An encryption of an invalid option has no accepting proof via the honest prover."""
        from repro.crypto.elgamal import ElGamal

        elgamal = ElGamal(group)
        randomness = group.random_scalar()
        ciphertext = elgamal.encrypt_int(dkg.public_key, 7, randomness)
        # Claiming it encrypts option 1 yields a proof that fails verification.
        proof = prove_wellformedness(group, dkg.public_key, ciphertext, 1, randomness + 1, 3)
        assert not verify_wellformedness(group, dkg.public_key, ciphertext, proof, 3)

    def test_proof_does_not_transfer_to_other_ciphertext(self, group, dkg):
        from repro.crypto.elgamal import ElGamal

        elgamal = ElGamal(group)
        randomness = group.random_scalar()
        ciphertext = elgamal.encrypt_int(dkg.public_key, 1, randomness)
        other = elgamal.encrypt_int(dkg.public_key, 1)
        proof = prove_wellformedness(group, dkg.public_key, ciphertext, 1, randomness, 3)
        assert not verify_wellformedness(group, dkg.public_key, other, proof, 3)

    def test_wrong_option_count_rejected(self, group, dkg):
        from repro.crypto.elgamal import ElGamal

        elgamal = ElGamal(group)
        randomness = group.random_scalar()
        ciphertext = elgamal.encrypt_int(dkg.public_key, 1, randomness)
        proof = prove_wellformedness(group, dkg.public_key, ciphertext, 1, randomness, 3)
        assert not verify_wellformedness(group, dkg.public_key, ciphertext, proof, 4)
