"""Core telemetry semantics: specs, no-op mode, span lineage, aggregates."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry import TelemetrySnapshot, telemetry_from_spec
from repro.telemetry.core import JsonlSink, MemSink


# ------------------------------------------------------------------ specs


def test_spec_off_and_empty_mean_disabled():
    assert telemetry_from_spec(None) is None
    assert telemetry_from_spec("off") is None
    assert telemetry_from_spec("") is None
    assert telemetry_from_spec("  off  ") is None


def test_spec_mem_and_jsonl(tmp_path):
    mem = telemetry_from_spec("mem")
    assert isinstance(mem.sink, MemSink)
    jsonl = telemetry_from_spec(f"jsonl:{tmp_path / 'trace.jsonl'}")
    assert isinstance(jsonl.sink, JsonlSink)
    jsonl.close()


def test_spec_rejects_unknown_and_pathless_jsonl():
    with pytest.raises(ValueError):
        telemetry_from_spec("statsd:localhost")
    with pytest.raises(ValueError):
        telemetry_from_spec("jsonl:")


# ------------------------------------------------------------------ disabled mode


def test_disabled_mode_is_a_no_op_but_spans_still_measure():
    telemetry.configure("off")
    assert not telemetry.enabled()
    assert telemetry.current() is None
    # Every primitive is callable and records nothing.
    telemetry.counter("c", 3, where="here")
    telemetry.gauge("g", 7)
    telemetry.histogram("h", 0.5)
    with telemetry.span("work", detail=1) as handle:
        pass
    # The handle measured its own region even though nothing was recorded
    # (Verifier.run reuses elapsed_seconds in AuditReport either way) …
    assert handle.elapsed_seconds >= 0.0
    # … and never minted an ID or touched the (absent) sink.
    assert handle.span_id == ""
    assert not telemetry.snapshot().spans
    assert not telemetry.snapshot().counters


# ------------------------------------------------------------------ span lineage


def test_nested_spans_record_parent_ids():
    telemetry.configure("mem", propagate=False)
    with telemetry.span("outer") as outer:
        with telemetry.span("middle") as middle:
            with telemetry.span("inner") as inner:
                pass
        with telemetry.span("sibling") as sibling:
            pass
    snapshot = telemetry.snapshot()
    by_name = {span["name"]: span for span in snapshot.spans}
    assert by_name["outer"]["parent_id"] is None
    assert by_name["middle"]["parent_id"] == outer.span_id
    assert by_name["inner"]["parent_id"] == middle.span_id
    assert by_name["sibling"]["parent_id"] == outer.span_id
    assert inner.parent_id == middle.span_id
    assert sibling.parent_id == outer.span_id


def test_span_records_error_attribute_on_exception():
    telemetry.configure("mem", propagate=False)
    with pytest.raises(ValueError):
        with telemetry.span("doomed"):
            raise ValueError("nope")
    (span,) = telemetry.snapshot().spans_named("doomed")
    assert span["attrs"]["error"] == "ValueError"


def test_concurrent_threads_get_independent_span_stacks():
    import threading

    telemetry.configure("mem", propagate=False)
    barrier = threading.Barrier(2)
    ids = {}

    def work(label: str) -> None:
        with telemetry.span(f"root-{label}") as root:
            barrier.wait(timeout=10)  # both roots open simultaneously
            with telemetry.span(f"leaf-{label}") as leaf:
                pass
            ids[label] = (root.span_id, leaf.parent_id)

    threads = [threading.Thread(target=work, args=(label,)) for label in ("a", "b")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    # Each leaf parents to its own thread's root, not the other thread's.
    assert ids["a"][1] == ids["a"][0]
    assert ids["b"][1] == ids["b"][0]
    assert ids["a"][0] != ids["b"][0]


# ------------------------------------------------------------------ metric aggregates


def test_counter_gauge_histogram_aggregate_and_label_canonicalization():
    telemetry.configure("mem", propagate=False)
    telemetry.counter("reqs", 2, a=1, b=2)
    telemetry.counter("reqs", 3, b=2, a=1)  # same series, different kwarg order
    telemetry.counter("reqs", 5, a=9)
    telemetry.gauge("depth", 3, queue="q")
    telemetry.gauge("depth", 1, queue="q")
    telemetry.histogram("batch", 10)
    telemetry.histogram("batch", 2)

    snapshot = telemetry.snapshot()
    assert snapshot.counter_total("reqs", a=1, b=2) == 5
    assert snapshot.counter_total("reqs") == 10
    key = ("depth", (("queue", "q"),))
    assert snapshot.gauges[key] == (1.0, 3.0)  # last=1, high-water=3
    assert snapshot.gauge_high_water("depth", queue="q") == 3.0
    ((_, histogram),) = [item for item in snapshot.histograms.items()]
    assert histogram == (2.0, 12.0, 2.0, 10.0)  # count, sum, min, max


# ------------------------------------------------------------------ drain / ingest


def test_drain_then_ingest_merges_under_extra_labels():
    # Worker side: buffer locally, then drain the piggyback blob.
    telemetry.configure("mem", propagate=False)
    with telemetry.span("cluster.task", mode="map"):
        telemetry.counter("work.items", 4)
    blob = telemetry.drain()
    assert blob, "drain returned nothing"
    assert telemetry.snapshot().spans == []  # drain popped the buffer

    # Coordinator side: a fresh telemetry ingests the blob with a worker label.
    telemetry.configure("mem", propagate=False)
    telemetry.ingest(blob, worker="w-7")
    snapshot = telemetry.snapshot()
    (span,) = snapshot.spans_named("cluster.task")
    assert span["attrs"]["worker"] == "w-7"
    assert span["attrs"]["mode"] == "map"
    assert snapshot.counter_total("work.items", worker="w-7") == 4


def test_ingest_merges_gauge_high_water_without_clobbering_last():
    telemetry.configure("mem", propagate=False)
    telemetry.gauge("depth", 2)
    telemetry.ingest([{"type": "gauge", "name": "depth", "labels": {}, "value": 1, "max": 9}])
    snapshot = telemetry.snapshot()
    assert snapshot.gauges[("depth", ())] == (1.0, 9.0)


# ------------------------------------------------------------------ rendering


def test_prometheus_rendering():
    telemetry.configure("mem", propagate=False)
    telemetry.counter("ledger.append.ballots", 6, backend="memory")
    telemetry.gauge("pipeline.queue.depth", 2, queue="source")
    with telemetry.span("tally.mix"):
        pass
    text = telemetry.snapshot().to_prometheus()
    assert 'repro_ledger_append_ballots_total{backend="memory"} 6' in text
    assert 'repro_pipeline_queue_depth{queue="source"} 2' in text
    assert 'repro_pipeline_queue_depth_max{queue="source"} 2' in text
    assert 'repro_span_seconds_count{name="tally.mix"} 1' in text


def test_span_tree_groups_siblings_and_attributes_self_time():
    events = [
        {"type": "span", "name": "root", "span_id": "r", "parent_id": None, "start": 0.0, "duration": 10.0},
        {"type": "span", "name": "leaf", "span_id": "l1", "parent_id": "r", "start": 1.0, "duration": 3.0},
        {"type": "span", "name": "leaf", "span_id": "l2", "parent_id": "r", "start": 5.0, "duration": 4.0},
        {"type": "span", "name": "orphan", "span_id": "o", "parent_id": "gone", "start": 2.0, "duration": 1.0},
    ]
    snapshot = TelemetrySnapshot.from_events(events)
    roots = {group.name: group for group in snapshot.span_tree()}
    assert set(roots) == {"root", "orphan"}  # unknown parent promotes to root
    root = roots["root"]
    assert root.self_time == pytest.approx(3.0)  # 10 - (3 + 4)
    (leaves,) = root.children
    assert leaves.count == 2 and leaves.total == pytest.approx(7.0)
    rendered = snapshot.render_tree()
    assert "leaf ×2" in rendered
    hotspots = snapshot.hotspots(top=2)
    assert hotspots[0][0] == "leaf"  # 7s self beats root's 3s self
