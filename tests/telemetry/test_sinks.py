"""Sink behaviour: JSONL atomicity under concurrent writers, env re-attach."""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import threading

from repro import telemetry
from repro.telemetry import TelemetrySnapshot
from repro.telemetry.core import JsonlSink, read_jsonl

EVENTS_PER_WRITER = 200


def _write_events(path: str, writer: int) -> None:
    sink = JsonlSink(path)
    for index in range(EVENTS_PER_WRITER):
        sink.emit({"type": "counter", "name": "stress", "labels": {"writer": str(writer)},
                   "value": 1, "seq": index, "pid": os.getpid()})
    sink.close()


def test_jsonl_lines_stay_atomic_under_processes_and_threads(tmp_path):
    """N processes + N threads hammer one trace file; every line must parse.

    O_APPEND plus one unbuffered write per line is the whole crash-safety
    story — if writes interleaved mid-line, json.loads would fail below.
    """
    path = str(tmp_path / "trace.jsonl")
    context = multiprocessing.get_context("fork")
    processes = [context.Process(target=_write_events, args=(path, writer)) for writer in range(3)]
    threads = [threading.Thread(target=_write_events, args=(path, 100 + writer)) for writer in range(3)]
    for worker in processes + threads:
        worker.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0
    for thread in threads:
        thread.join(timeout=60)

    raw_lines = [line for line in open(path, "rb").read().splitlines() if line.strip()]
    assert len(raw_lines) == 6 * EVENTS_PER_WRITER
    events = [json.loads(line) for line in raw_lines]  # raises if any line tore
    per_writer = {}
    for event in events:
        per_writer.setdefault(event["labels"]["writer"], set()).add(event["seq"])
    assert all(len(seen) == EVENTS_PER_WRITER for seen in per_writer.values())
    # read_jsonl agrees with the strict parse.
    assert len(list(read_jsonl(path))) == len(events)


def test_read_jsonl_skips_torn_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"type":"span","name":"ok"}\n{"type":"sp\n{"type":"counter","name":"c","value":1}\n')
    events = list(read_jsonl(str(path)))
    assert [event.get("name") for event in events] == ["ok", "c"]


def test_subprocess_reattaches_from_environment(tmp_path):
    """A child process with ``REPRO_TELEMETRY`` set joins the same trace.

    This is the process-pool propagation contract (same path as
    ``REPRO_PRECOMPUTE_CACHE``): the parent configures, the environment
    carries the spec, and the child's lazy resolve attaches the jsonl sink —
    its spans stream in live and its counters flush at exit.
    """
    path = tmp_path / "trace.jsonl"
    spec = f"jsonl:{path}"
    child = (
        "from repro import telemetry\n"
        "assert telemetry.enabled(), 'child did not attach from REPRO_TELEMETRY'\n"
        "with telemetry.span('child.work', role='subprocess'):\n"
        "    telemetry.counter('child.items', 5)\n"
    )
    env = dict(os.environ)
    env["REPRO_TELEMETRY"] = spec
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if part
    )
    subprocess.run([sys.executable, "-c", child], env=env, check=True, timeout=60)

    snapshot = TelemetrySnapshot.from_jsonl(str(path))
    (span,) = snapshot.spans_named("child.work")
    assert span["attrs"]["role"] == "subprocess"
    assert span["pid"] != os.getpid()
    assert snapshot.counter_total("child.items") == 5


def test_configure_off_flushes_metrics_into_the_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    telemetry.configure(f"jsonl:{path}", propagate=False)
    telemetry.counter("late.metric", 3)
    telemetry.configure("off")  # detach must flush, not drop, the aggregates
    snapshot = TelemetrySnapshot.from_jsonl(str(path))
    assert snapshot.counter_total("late.metric") == 3
