"""Instrumentation coverage: phase spans, executor parenting, pipeline gauges."""

from __future__ import annotations

from repro import telemetry
from repro.election.config import ElectionConfig
from repro.election.pipeline import VotegralElection
from repro.runtime.executor import executor_from_spec
from repro.telemetry.__main__ import main as telemetry_cli

PHASES = {"tally.sig-check", "tally.mix", "tally.tag", "tally.join", "tally.decrypt"}


def _double(value):
    return value * 2


def test_serial_election_emits_all_five_phase_spans():
    config = ElectionConfig(num_voters=4, num_mixers=2, proof_rounds=2, telemetry_spec="mem")
    outcome = VotegralElection(config).run()
    assert outcome.counts_match_intent
    snapshot = telemetry.snapshot()
    assert PHASES <= set(snapshot.span_names())
    # The ledger instrumentation rode along.
    assert snapshot.counter_total("ledger.append.ballots") > 0
    assert snapshot.spans_named("ledger.read")
    # audit.run timed the verification (its elapsed_seconds feeds AuditReport).
    assert snapshot.spans_named("audit.run")


def test_streaming_election_emits_phase_spans_and_queue_gauges():
    config = ElectionConfig(
        num_voters=4, num_mixers=2, proof_rounds=2,
        pipeline_spec="stream:2", telemetry_spec="mem",
    )
    outcome = VotegralElection(config).run()
    assert outcome.counts_match_intent
    snapshot = telemetry.snapshot()
    assert PHASES <= set(snapshot.span_names())
    assert snapshot.spans_named("pipeline.stage")
    # The bounded queues sampled their depth; the high-water mark survives.
    assert snapshot.gauge_high_water("pipeline.queue.depth") is not None
    stages = {span["attrs"]["stage"] for span in snapshot.spans_named("pipeline.stage")}
    assert len(stages) >= 2  # several distinct stages reported shard latency


def test_executor_map_span_nests_under_caller_across_backends():
    """The fan-out span parents into the caller's span for thread *and*
    process pools — the boundary the trace must not lose."""
    for spec in ("thread:2", "process:2"):
        telemetry.configure("mem", propagate=False)
        executor = executor_from_spec(spec)
        try:
            executor.warm()
            with telemetry.span("caller", backend=spec) as caller:
                assert executor.map(_double, list(range(32))) == [2 * i for i in range(32)]
        finally:
            executor.close()
        snapshot = telemetry.snapshot()
        map_spans = [
            span for span in snapshot.spans_named("executor.map")
            if span["parent_id"] == caller.span_id
        ]
        assert map_spans, f"{spec}: executor.map span did not nest under the caller"
        assert map_spans[0]["attrs"]["items"] == 32
        warm_spans = snapshot.spans_named("executor.warm")
        assert warm_spans and warm_spans[0]["attrs"]["backend"] == executor.name
        telemetry.configure("off")


def test_summarize_cli(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    telemetry.configure(f"jsonl:{path}", propagate=False)
    with telemetry.span("tally.mix", mixer=0):
        with telemetry.span("executor.map", backend="serial"):
            pass
    telemetry.counter("cluster.dispatch", 3, worker="w-0")
    telemetry.configure("off")

    assert telemetry_cli(["summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "tally.mix" in out
    assert "executor.map" in out
    assert "repro_cluster_dispatch_total" in out

    assert telemetry_cli(["summarize", str(tmp_path / "missing.jsonl")]) == 2
