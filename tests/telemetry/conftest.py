"""Telemetry test hygiene: never leak an attached sink between tests.

Telemetry state is deliberately process-global (instrumented modules resolve
it lazily), so every test in this package detaches whatever it configured —
including the ``REPRO_TELEMETRY`` environment propagation — on the way out.
"""

from __future__ import annotations

import os

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    yield
    telemetry.configure("off")
    os.environ.pop("REPRO_TELEMETRY", None)
