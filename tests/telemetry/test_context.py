"""Trace context: contextvars parenting, the traceparent codec, sampling.

The regression that motivated the contextvars rewrite lives here: two
asyncio coroutines interleaving on one thread must keep *distinct* parent
chains.  A thread-local span stack cannot tell them apart — whichever span
happens to sit on top of the shared stack becomes everyone's parent — so
the first test fails on that design by construction.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import telemetry
from repro.telemetry import context


# ---------------------------------------------------------------- parenting


def test_interleaved_coroutines_keep_distinct_parent_chains():
    """Two requests interleave on one event loop; each keeps its own trace."""
    telemetry.configure("mem", propagate=False)

    async def request(which: str) -> None:
        with telemetry.span("gateway.request", which=which):
            # Yield inside the span so the *other* coroutine's spans open and
            # close while ours is on the (per-task) context.
            await asyncio.sleep(0)
            with telemetry.span("gateway.batch.admit", which=which):
                await asyncio.sleep(0)

    async def main() -> None:
        await asyncio.gather(request("a"), request("b"))

    asyncio.run(main())
    snapshot = telemetry.snapshot()
    roots = {span["attrs"]["which"]: span for span in snapshot.spans_named("gateway.request")}
    children = snapshot.spans_named("gateway.batch.admit")
    assert set(roots) == {"a", "b"} and len(children) == 2
    # Each child parents under *its own* request, never the interleaved one.
    for child in children:
        root = roots[child["attrs"]["which"]]
        assert child["parent_id"] == root["span_id"]
        assert child["trace_id"] == root["trace_id"]
    # And the two requests are separate traces entirely.
    assert roots["a"]["trace_id"] != roots["b"]["trace_id"]


def test_attached_remote_context_parents_local_spans():
    """attach() continues a trace that began in another process."""
    telemetry.configure("mem", propagate=False)
    remote = telemetry.parse_traceparent(
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
    )
    token = telemetry.attach(remote)
    try:
        with telemetry.span("cluster.task"):
            pass
    finally:
        telemetry.detach(token)
    (span,) = telemetry.snapshot().spans_named("cluster.task")
    assert span["trace_id"] == "4bf92f3577b34da6a3ce929d0e0e4736"
    assert span["parent_id"] == "00f067aa0ba902b7"
    # detach() restored the outer state: a fresh span mints a fresh trace.
    with telemetry.span("ledger.read"):
        pass
    (outside,) = telemetry.snapshot().spans_named("ledger.read")
    assert outside["trace_id"] != span["trace_id"]
    assert outside["parent_id"] is None


def test_root_span_mints_a_trace_and_children_inherit_it():
    telemetry.configure("mem", propagate=False)
    with telemetry.span("audit.run"):
        with telemetry.span("ledger.read"):
            pass
    (root,) = telemetry.snapshot().spans_named("audit.run")
    (child,) = telemetry.snapshot().spans_named("ledger.read")
    assert len(root["trace_id"]) == 32 and len(root["span_id"]) == 16
    assert root["parent_id"] is None
    assert child["trace_id"] == root["trace_id"]
    assert child["parent_id"] == root["span_id"]


# ---------------------------------------------------------------- the codec


def test_traceparent_round_trip():
    ctx = context.TraceContext(
        trace_id="4bf92f3577b34da6a3ce929d0e0e4736",
        span_id="00f067aa0ba902b7",
        sampled=True,
    )
    assert context.parse_traceparent(ctx.to_traceparent()) == ctx
    unsampled = ctx._replace(sampled=False)
    assert unsampled.to_traceparent().endswith("-00")
    assert context.parse_traceparent(unsampled.to_traceparent()) == unsampled


@pytest.mark.parametrize(
    "header",
    [
        "",
        "garbage",
        "00-short-00f067aa0ba902b7-01",
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",  # missing flags
        "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  # bad version
        "00-" + "0" * 32 + "-00f067aa0ba902b7-01",  # all-zero trace id
        "00-4bf92f3577b34da6a3ce929d0e0e4736-" + "0" * 16 + "-01",  # zero span
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bZ-01",  # non-hex
    ],
)
def test_malformed_traceparents_are_rejected(header):
    assert context.parse_traceparent(header) is None


# ----------------------------------------------------------------- sampling


def test_sampling_decision_is_deterministic_in_the_trace_id():
    low = "00000000" + "0" * 24   # hash prefix 0 -> always kept for rate > 0
    high = "ffffffff" + "0" * 24  # hash prefix max -> only kept at rate 1.0
    assert context.trace_is_sampled(low, 0.01)
    assert not context.trace_is_sampled(high, 0.99)
    assert context.trace_is_sampled(high, 1.0)
    assert not context.trace_is_sampled(low, 0.0)


def test_sample_rate_env_is_clamped(monkeypatch):
    monkeypatch.setenv(context.SAMPLE_ENV, "7")
    assert context.sample_rate() == 1.0
    monkeypatch.setenv(context.SAMPLE_ENV, "-1")
    assert context.sample_rate() == 0.0
    monkeypatch.setenv(context.SAMPLE_ENV, "not a number")
    assert context.sample_rate() == 1.0
    monkeypatch.delenv(context.SAMPLE_ENV)
    assert context.sample_rate() == 1.0


def test_zero_sample_rate_drops_spans_but_never_errors(monkeypatch):
    monkeypatch.setenv(context.SAMPLE_ENV, "0")
    telemetry.configure("mem", propagate=False)
    with telemetry.span("ledger.append"):
        with telemetry.span("ledger.flush"):
            pass
    snapshot = telemetry.snapshot()
    assert snapshot.spans_named("ledger.append") == []
    assert snapshot.spans_named("ledger.flush") == []
    # A failing span is recorded at any sample rate: failures stay visible.
    with pytest.raises(ValueError):
        with telemetry.span("ledger.read"):
            raise ValueError("boom")
    (error_span,) = telemetry.snapshot().spans_named("ledger.read")
    assert error_span["attrs"]["error"] == "ValueError"


def test_metrics_are_never_sampled(monkeypatch):
    monkeypatch.setenv(context.SAMPLE_ENV, "0")
    telemetry.configure("mem", propagate=False)
    telemetry.counter("gateway.casts", 3)
    assert telemetry.snapshot().counter_total("gateway.casts") == 3
