"""The audit API surface: plans, reports, strategies, spec parsing."""

from __future__ import annotations

import pytest

from repro.audit.api import (
    AuditPlan,
    AuditReport,
    BatchedVerifier,
    Check,
    CheckStatus,
    EagerVerifier,
    StreamingVerifier,
    verifier_from_spec,
)
from repro.crypto.hashing import sha256
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign


def _truth(value):
    return value


def _predicate_check(name, value):
    return Check("predicate", name, (_truth, value))


def _signature_checks(group, count, bad=()):
    checks = []
    for index in range(count):
        keypair = schnorr_keygen(group)
        message = sha256(b"audit-test", index.to_bytes(4, "big"))
        signature = schnorr_sign(keypair, message)
        public = keypair.public
        if index in bad:
            message = sha256(b"tampered", index.to_bytes(4, "big"))
        checks.append(Check("schnorr", f"sig[{index}]", (public, message, signature)))
    return checks


class TestPlanAndReport:
    def test_plan_add_and_iterate(self):
        plan = AuditPlan()
        plan.add("predicate", "a", _truth, True)
        plan.extend([_predicate_check("b", True)])
        assert len(plan) == 2
        assert [check.name for check in plan] == ["a", "b"]

    def test_report_outcome_accessors(self):
        plan = AuditPlan([_predicate_check("good", True), _predicate_check("bad", False)])
        report = EagerVerifier().run(plan)
        assert not report.ok
        assert report.num_checks == 2
        assert report.num_failed == 1
        assert report.first_failure.name == "bad"
        assert report.counts_by_kind() == {"predicate": (1, 1)}
        assert report.results[0].status is CheckStatus.PASSED

    def test_reports_compare_on_outcomes_not_strategy_or_timing(self):
        plan = AuditPlan([_predicate_check("x", True)])
        eager = EagerVerifier().run(plan)
        batched = BatchedVerifier().run(plan)
        assert eager == batched
        assert eager.fingerprint() == batched.fingerprint()
        assert eager.strategy != batched.strategy

    def test_fingerprint_depends_on_outcomes(self):
        good = EagerVerifier().run(AuditPlan([_predicate_check("x", True)]))
        bad = EagerVerifier().run(AuditPlan([_predicate_check("x", False)]))
        assert good.fingerprint() != bad.fingerprint()

    def test_summary_mentions_failure_locus(self):
        report = EagerVerifier().run(AuditPlan([_predicate_check("the.locus", False)]))
        assert "the.locus" in report.summary()
        assert "FAIL" in report.summary()

    def test_empty_plan_passes(self):
        for verifier in (EagerVerifier(), BatchedVerifier(), StreamingVerifier()):
            report = verifier.run(AuditPlan())
            assert report.ok and report.num_checks == 0


class TestStrategies:
    def test_batched_matches_eager_on_valid_signatures(self, group):
        plan = AuditPlan(_signature_checks(group, 12))
        eager = EagerVerifier().run(plan)
        batched = BatchedVerifier(chunk_size=5).run(plan)
        assert eager.ok and batched.ok
        assert eager == batched

    def test_batched_bisects_to_exact_verdicts(self, group):
        bad = {3, 7}
        plan = AuditPlan(_signature_checks(group, 10, bad=bad))
        eager = EagerVerifier().run(plan)
        batched = BatchedVerifier(chunk_size=4).run(plan)
        assert eager == batched
        assert {result.name for result in batched.failures} == {f"sig[{i}]" for i in bad}

    def test_streaming_matches_on_valid_plans(self, group):
        plan = AuditPlan(_signature_checks(group, 9))
        eager = EagerVerifier().run(plan)
        streamed = StreamingVerifier(shard_size=2).run(plan)
        assert streamed.ok
        assert eager == streamed

    def test_streaming_cancels_after_first_failing_shard(self, group):
        checks = _signature_checks(group, 20, bad={4})
        eager = EagerVerifier().run(AuditPlan(checks))
        streamed = StreamingVerifier(shard_size=2, queue_depth=1).run(AuditPlan(checks))
        assert not streamed.ok
        # Truncated at the failing shard — but what was checked agrees exactly.
        assert len(streamed.results) < len(eager.results)
        assert eager.results[: len(streamed.results)] == streamed.results
        assert streamed.first_failure == eager.first_failure

    def test_mixed_kind_plan_keeps_plan_order(self, group):
        checks = _signature_checks(group, 3) + [_predicate_check("p", True)]
        interleaved = [checks[3], checks[0], checks[1], checks[2]]
        report = BatchedVerifier().run(AuditPlan(interleaved))
        assert [result.name for result in report.results] == ["p", "sig[0]", "sig[1]", "sig[2]"]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown audit check kind"):
            EagerVerifier().run(AuditPlan([Check("no-such-kind", "x", ())]))


class TestSpecParsing:
    def test_default_is_eager(self):
        assert isinstance(verifier_from_spec(None), EagerVerifier)
        assert isinstance(verifier_from_spec("eager"), EagerVerifier)

    def test_batched_with_chunk(self):
        verifier = verifier_from_spec("batched:64")
        assert isinstance(verifier, BatchedVerifier)
        assert verifier.chunk_size == 64

    def test_stream_with_geometry(self):
        verifier = verifier_from_spec("stream:16:2")
        assert isinstance(verifier, StreamingVerifier)
        assert verifier.shard_size == 16
        assert verifier.queue_depth == 2

    @pytest.mark.parametrize("spec", ["nope", "batched:zero", "eager:1", "stream:x"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            verifier_from_spec(spec)

    def test_report_is_a_dataclass_with_outcomes(self):
        report = AuditReport(results=[])
        assert report.ok and report.first_failure is None
