"""Audit soundness under evidence mutation (stateless-model-checking spirit).

For each evidence class — ballot proof, shuffle transcript, decryption
share, tag chain (both families), ledger batch chain, ledger hash chain —
flip one byte (or the minimal scalar/element perturbation the type allows)
and assert that *all three strategies* reject with the *same failure
locus*.  On valid elections the three strategies must produce bit-identical
:class:`~repro.audit.api.AuditReport` outcomes; on mutated evidence the
streaming report may truncate after the failing shard but must agree with
the eager report on everything it checked.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.audit.api import AuditPlan, BatchedVerifier, EagerVerifier, StreamingVerifier
from repro.audit.checks import ballot_checks, cascade_checks, decryption_checks
from repro.audit.evidence import decryption_transcript
from repro.audit.api import Check
from repro.crypto.elgamal import ElGamal
from repro.crypto.schnorr import schnorr_keygen
from repro.crypto.tagging import TaggingAuthority
from repro.ledger.backends.batched import BatchSummary, BatchedBoard
from repro.ledger.backends.memory import MemoryBackend
from repro.ledger.log import AppendOnlyLog
from repro.tally.mixnet import TupleCascade, TupleOpening, tuple_mix_cascade
from repro.voting.ballot import make_ballot

STRATEGIES = {
    "eager": lambda: EagerVerifier(),
    "batched": lambda: BatchedVerifier(chunk_size=4),
    "stream": lambda: StreamingVerifier(shard_size=3, queue_depth=1),
}


def _flip_byte(data: bytes, position: int = 0) -> bytes:
    mutated = bytearray(data)
    mutated[position % len(mutated)] ^= 0x01
    return bytes(mutated)


def _run_all(plan_factory):
    return {name: factory().run(plan_factory()) for name, factory in STRATEGIES.items()}


def _assert_same_rejection(reports, expected_locus=None):
    """All strategies reject, agree on the locus, and agree on shared prefixes."""
    eager = reports["eager"]
    assert not eager.ok
    for name, report in reports.items():
        assert not report.ok, f"{name} accepted mutated evidence"
        assert report.first_failure == eager.first_failure, name
        # Whatever a (possibly truncated) report checked, it judged identically.
        assert eager.results[: len(report.results)] == report.results, name
    if expected_locus is not None:
        assert eager.first_failure.name == expected_locus
    return eager.first_failure


@pytest.fixture()
def tagging(group):
    return TaggingAuthority.create(group, 3)


class TestBallotProofMutations:
    def _plan(self, group, dkg, ballot, num_options=3):
        return lambda: AuditPlan(ballot_checks(group, dkg.public_key, ballot, num_options))

    def test_valid_ballot_accepted_identically(self, group, dkg):
        ballot = make_ballot(group, dkg.public_key, schnorr_keygen(group), 1, 3)
        reports = _run_all(self._plan(group, dkg, ballot))
        assert all(report.ok for report in reports.values())
        assert len({report.fingerprint() for report in reports.values()}) == 1

    def test_mutated_signature_rejected(self, group, dkg):
        ballot = make_ballot(group, dkg.public_key, schnorr_keygen(group), 1, 3)
        forged = replace(ballot, signature=replace(ballot.signature, response=ballot.signature.response ^ 1))
        _assert_same_rejection(
            _run_all(self._plan(group, dkg, forged)), expected_locus="ballot.signature"
        )

    def test_mutated_wellformedness_rejected(self, group, dkg):
        ballot = make_ballot(group, dkg.public_key, schnorr_keygen(group), 1, 3)
        proof = ballot.wellformedness
        tampered = replace(
            proof, responses=[proof.responses[0] ^ 1] + list(proof.responses[1:])
        )
        forged = replace(ballot, wellformedness=tampered)
        _assert_same_rejection(
            _run_all(self._plan(group, dkg, forged)), expected_locus="ballot.wellformedness"
        )

    def test_mutated_key_proof_rejected(self, group, dkg):
        ballot = make_ballot(group, dkg.public_key, schnorr_keygen(group), 1, 3)
        forged = replace(ballot, key_proof=replace(ballot.key_proof, response=ballot.key_proof.response ^ 1))
        _assert_same_rejection(
            _run_all(self._plan(group, dkg, forged)), expected_locus="ballot.credential-key-proof"
        )


class TestShuffleTranscriptMutations:
    def _cascade(self, group, dkg, count=5, mixers=2, rounds=3):
        elgamal = ElGamal(group)
        inputs = [
            (elgamal.encrypt(dkg.public_key, group.power(i + 2)),
             elgamal.encrypt(dkg.public_key, group.power(i + 9)))
            for i in range(count)
        ]
        cascade = tuple_mix_cascade(elgamal, dkg.public_key, inputs, mixers, rounds)
        return elgamal, inputs, cascade

    def test_valid_cascade_accepted_identically(self, group, dkg):
        elgamal, inputs, cascade = self._cascade(group, dkg)
        reports = _run_all(lambda: AuditPlan(cascade_checks(elgamal, dkg.public_key, inputs, cascade)))
        assert all(report.ok for report in reports.values())
        assert len({report.fingerprint() for report in reports.values()}) == 1

    def test_mutated_opening_randomness_rejected(self, group, dkg):
        elgamal, inputs, cascade = self._cascade(group, dkg)
        stage = cascade.stages[1]
        round_ = stage.rounds[2]
        opening = round_.opening
        tampered_randomness = [list(row) for row in opening.randomness]
        tampered_randomness[0][0] ^= 1
        tampered_stage = replace(
            stage,
            rounds=stage.rounds[:2]
            + [replace(round_, opening=TupleOpening(opening.permutation, tampered_randomness))]
            + stage.rounds[3:],
        )
        tampered = TupleCascade(stages=[cascade.stages[0], tampered_stage] + cascade.stages[2:])
        _assert_same_rejection(
            _run_all(lambda: AuditPlan(cascade_checks(elgamal, dkg.public_key, inputs, tampered))),
            expected_locus="cascade[1].round[2]",
        )

    def test_swapped_stages_fail_at_first_bad_coin_check(self, group, dkg):
        elgamal, inputs, cascade = self._cascade(group, dkg)
        tampered = TupleCascade(stages=[cascade.stages[1], cascade.stages[0]])
        locus = _assert_same_rejection(
            _run_all(lambda: AuditPlan(cascade_checks(elgamal, dkg.public_key, inputs, tampered)))
        )
        # The re-derived Fiat–Shamir coins (or, when they coincide, the first
        # opening) expose the swap — either way the locus names stage 0.
        assert locus.name.startswith("cascade[0].")


class TestDecryptionShareMutations:
    def _plan(self, dkg, transcript):
        publics = [member.public for member in dkg.members]
        return lambda: AuditPlan(decryption_checks(transcript, publics, "decryption[0]"))

    def test_valid_transcript_accepted_identically(self, group, dkg):
        elgamal = ElGamal(group)
        ciphertext = elgamal.encrypt(dkg.public_key, group.power(5))
        transcript = decryption_transcript(dkg, ciphertext)
        reports = _run_all(self._plan(dkg, transcript))
        assert all(report.ok for report in reports.values())

    def test_mutated_share_response_rejected(self, group, dkg):
        elgamal = ElGamal(group)
        ciphertext = elgamal.encrypt(dkg.public_key, group.power(5))
        transcript = decryption_transcript(dkg, ciphertext)
        bad = replace(transcript.shares[1], response=transcript.shares[1].response ^ 1)
        tampered = replace(
            transcript, shares=(transcript.shares[0], bad) + transcript.shares[2:]
        )
        _assert_same_rejection(
            _run_all(self._plan(dkg, tampered)), expected_locus="decryption[0].share[2]"
        )

    def test_substituted_share_value_rejected(self, group, dkg):
        elgamal = ElGamal(group)
        ciphertext = elgamal.encrypt(dkg.public_key, group.power(5))
        transcript = decryption_transcript(dkg, ciphertext)
        bad = replace(transcript.shares[0], share=transcript.shares[0].share * group.generator)
        tampered = replace(transcript, shares=(bad,) + transcript.shares[1:])
        _assert_same_rejection(
            _run_all(self._plan(dkg, tampered)), expected_locus="decryption[0].share[1]"
        )


class TestTagChainMutations:
    def test_element_chain_mutation_rejected(self, group, tagging):
        element = group.power(7)
        tag = tagging.blind_element(element)
        tampered_step = replace(tag.steps[1], after=tag.steps[1].after * group.generator)
        tampered = replace(tag, steps=[tag.steps[0], tampered_step] + tag.steps[2:])
        plan = lambda: AuditPlan(
            [Check("tag-chain", "tag[0].chain", (tampered, element, tuple(tagging.commitments)))]
        )
        _assert_same_rejection(_run_all(plan), expected_locus="tag[0].chain")

    def test_ciphertext_chain_proof_mutation_rejected(self, group, dkg, tagging):
        elgamal = ElGamal(group)
        ciphertext = elgamal.encrypt(dkg.public_key, group.power(3))
        blinded, steps = tagging.blind_ciphertext_with_proof(ciphertext)
        bad_proof = replace(steps[0].proof_c2, response=steps[0].proof_c2.response ^ 1)
        tampered = [replace(steps[0], proof_c2=bad_proof)] + steps[1:]
        plan = lambda: AuditPlan(
            [
                Check(
                    "ciphertext-tag-chain",
                    "tag[ballot][0].blind-steps",
                    (tuple(tampered), ciphertext, blinded, tuple(tagging.commitments)),
                )
            ]
        )
        _assert_same_rejection(_run_all(plan), expected_locus="tag[ballot][0].blind-steps")

    def test_valid_chains_accepted_identically(self, group, dkg, tagging):
        elgamal = ElGamal(group)
        element = group.power(7)
        ciphertext = elgamal.encrypt(dkg.public_key, group.power(3))
        tag = tagging.blind_element(element)
        blinded, steps = tagging.blind_ciphertext_with_proof(ciphertext)
        plan = lambda: AuditPlan(
            [
                Check("tag-chain", "tag[0]", (tag, element, tuple(tagging.commitments))),
                Check(
                    "ciphertext-tag-chain",
                    "tag[1]",
                    (tuple(steps), ciphertext, blinded, tuple(tagging.commitments)),
                ),
            ]
        )
        reports = _run_all(plan)
        assert all(report.ok for report in reports.values())
        assert len({report.fingerprint() for report in reports.values()}) == 1


class TestLedgerChainMutations:
    def test_flipped_log_payload_rejected(self):
        log = AppendOnlyLog("L_V")
        for index in range(6):
            log.append(b"payload-%d" % index)
        entries = log.entries()
        entries[3] = replace(entries[3], payload=_flip_byte(entries[3].payload))
        plan = lambda: AuditPlan(
            [Check("ledger-chain", "ledger.ballot-chain", ("ballot", tuple(entries)))]
        )
        _assert_same_rejection(_run_all(plan), expected_locus="ledger.ballot-chain")

    def test_board_view_audit_chains_names_locus(self):
        from repro.ledger.api import BoardView

        backend = MemoryBackend()
        backend.publish_electoral_roll(["alice", "bob"])
        view = BoardView(backend)
        report = view.audit_chains()
        assert report.ok and view.verify_all_chains()
        assert {result.name for result in report.results} == {
            "ledger.registration-chain", "ledger.envelope-chain", "ledger.ballot-chain"
        }
        # Tamper with the live log and the locus names the chain.
        backend.registration_log._entries[0] = replace(
            backend.registration_log._entries[0],
            payload=_flip_byte(backend.registration_log._entries[0].payload),
        )
        report = view.audit_chains()
        assert not report.ok
        assert report.first_failure.name == "ledger.registration-chain"
        assert not view.verify_all_chains()

    def test_flipped_batch_digest_rejected(self, group):
        board = BatchedBoard(MemoryBackend(), batch_size=2)
        board.publish_electoral_roll([f"v{i}" for i in range(4)])
        board.flush()
        batches = [
            BatchSummary.compute_digest(0, b"\x00" * 32, [b"a", b"b"]),
        ]
        # Build a real chained batch history, then flip one digest byte.
        first = BatchSummary(0, 2, b"\x00" * 32, batches[0])
        second = BatchSummary(
            1, 1, first.digest, BatchSummary.compute_digest(1, first.digest, [b"c"])
        )
        valid = (first, second)
        plan_valid = lambda: AuditPlan([Check("batch-chain", "ledger.ingest-batches", (valid,))])
        assert all(report.ok for report in _run_all(plan_valid).values())

        tampered = (first, replace(second, previous_digest=_flip_byte(second.previous_digest)))
        plan_bad = lambda: AuditPlan([Check("batch-chain", "ledger.ingest-batches", (tampered,))])
        _assert_same_rejection(_run_all(plan_bad), expected_locus="ledger.ingest-batches")


class TestRegistrationAuditNamesLocus:
    def test_failed_record_names_predicate(self, group, small_setup):
        from repro.registration.official import RegistrationOfficial

        record = None
        from repro.registration.protocol import RegistrationSession
        from repro.registration.voter import Voter

        session = RegistrationSession(setup=small_setup)
        outcome = session.register(Voter("alice"))
        record = outcome.record
        keys = small_setup.registrar.kiosk_public_keys
        assert RegistrationOfficial.verify_record(record, keys)

        forged = replace(record, official_signature=replace(
            record.official_signature, response=record.official_signature.response ^ 1
        ))
        report = RegistrationOfficial.audit_record(forged, keys)
        assert not report.ok
        assert report.first_failure.name == "registration[alice].official-signature"

        unauthorized = replace(record, kiosk_public_key=group.generator)
        report = RegistrationOfficial.audit_record(unauthorized, keys)
        assert not report.ok
        assert report.first_failure.name == "registration[alice].kiosk-authorized"

    def test_failed_rotation_names_record(self, group):
        from repro.crypto.hashing import sha256
        from repro.crypto.schnorr import schnorr_sign
        from repro.registration.extensions import RotationRecord, audit_rotation

        old = schnorr_keygen(group)
        new = schnorr_keygen(group)
        record = RotationRecord(
            old_public_key=old.public,
            new_public_key=new.public,
            signature=schnorr_sign(
                old, sha256(b"credential-rotation", old.public.to_bytes(), new.public.to_bytes())
            ),
        )
        assert audit_rotation(record).ok
        forged = replace(record, new_public_key=record.new_public_key * group.generator)
        report = audit_rotation(forged)
        assert not report.ok
        locus = record.old_public_key.to_bytes().hex()[:12]
        assert report.first_failure.name == f"rotation[{locus}].signature"
