"""End-to-end election auditing: the acceptance surface of ``repro.audit``.

``audit_election`` over a board produced by the standard
:class:`~repro.election.pipeline.VotegralElection` flow must pass under all
three strategies with bit-identical :class:`~repro.audit.api.AuditReport`
outcomes — including the published tagging/decryption evidence bundle —
and a tampered result must fail with a named locus under every strategy.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.audit.api import BatchedVerifier, EagerVerifier, StreamingVerifier
from repro.audit.checks import audit_election, audit_tally
from repro.election.config import ElectionConfig
from repro.election.pipeline import VotegralElection

STRATEGIES = ("eager", "batched:8", "stream:16:2")


@pytest.fixture(scope="module")
def voted_election():
    config = ElectionConfig(
        num_voters=4, num_options=2, proof_rounds=2, num_mixers=2, audit_evidence=True
    )
    election = VotegralElection(config)
    election.run_setup()
    election.run_registration()
    election.run_voting(rng=random.Random(17))
    result = election.run_tally(verify=False)
    yield election, result
    election.close()


class TestAuditElection:
    def test_all_strategies_pass_with_identical_outcomes(self, voted_election):
        election, result = voted_election
        reports = [
            audit_election(
                election.setup.board,
                election.config,
                authority=election.setup.authority,
                result=result,
                kiosk_public_keys=election.setup.registrar.kiosk_public_keys,
                verifier=spec,
            )
            for spec in STRATEGIES
        ]
        for spec, report in zip(STRATEGIES, reports):
            assert report.ok, f"{spec}: {report.summary()}"
        assert len({report.fingerprint() for report in reports}) == 1
        assert reports[0] == reports[1] == reports[2]

    def test_evidence_bundle_is_checked(self, voted_election):
        election, result = voted_election
        assert result.evidence is not None
        report = audit_election(
            election.setup.board,
            election.config,
            authority=election.setup.authority,
            result=result,
            verifier="eager",
        )
        kinds = report.counts_by_kind()
        assert kinds["ciphertext-tag-chain"][0] > 0
        assert kinds["decryption-share"][0] > 0

    def test_tampered_counts_fail_under_every_strategy(self, voted_election):
        election, result = voted_election
        tampered = replace(result, counts={**result.counts, 0: result.counts[0] + 5})
        loci = set()
        for spec in STRATEGIES:
            report = audit_tally(
                election.group, election.setup.authority, election.setup.board, tampered,
                verifier=spec,
            )
            assert not report.ok
            loci.add(report.first_failure.name)
        assert loci == {"tally.counts-sum"}

    def test_tampered_evidence_tag_fails(self, voted_election):
        election, result = voted_election
        evidence = result.evidence
        bad_tag = replace(
            evidence.registration_tags[0],
            tag=evidence.registration_tags[0].tag * election.group.generator,
        )
        tampered = replace(
            result,
            evidence=replace(
                evidence, registration_tags=(bad_tag,) + evidence.registration_tags[1:]
            ),
        )
        for spec in STRATEGIES:
            report = audit_tally(
                election.group, election.setup.authority, election.setup.board, tampered,
                verifier=spec,
            )
            assert not report.ok
            assert report.first_failure.name.startswith("tag[registration][0].")

    def test_surplus_evidence_entries_cannot_pass_unchecked(self, voted_election):
        # A malicious tallier padding both the filter tag list and the
        # evidence bundle with a fabricated extra entry must be caught by the
        # count predicates (anchored to the *verified* cascade outputs), not
        # silently truncated out of the per-entry loops.
        election, result = voted_election
        evidence = result.evidence
        extra = evidence.registration_tags[0]
        padded_filter = replace(
            result.filter_result,
            registration_tags=list(result.filter_result.registration_tags) + [extra.tag.to_bytes()],
        )
        tampered = replace(
            result,
            filter_result=padded_filter,
            evidence=replace(
                evidence, registration_tags=evidence.registration_tags + (extra,)
            ),
        )
        for spec in STRATEGIES:
            report = audit_tally(
                election.group, election.setup.authority, election.setup.board, tampered,
                verifier=spec,
            )
            assert not report.ok
            assert report.first_failure.name == "evidence.registration-tag-count"

    def test_join_outcome_bound_to_verified_tags(self, voted_election):
        # Claiming an extra counted ciphertext (with a matching decryption
        # transcript) must fail the re-joined filter consistency check.
        election, result = voted_election
        from repro.audit.evidence import decryption_transcript

        fake_vote = result.filter_result.counted[0]
        padded = replace(
            result.filter_result, counted=list(result.filter_result.counted) + [fake_vote]
        )
        tampered = replace(
            result,
            filter_result=padded,
            votes=list(result.votes) + [result.votes[0]],
            num_counted=result.num_counted + 1,
            evidence=replace(
                result.evidence,
                decryptions=result.evidence.decryptions
                + (decryption_transcript(election.setup.authority, fake_vote),),
            ),
        )
        report = audit_tally(
            election.group, election.setup.authority, election.setup.board, tampered,
            verifier="eager",
        )
        assert not report.ok
        failing = {result_.name for result_ in report.failures}
        assert "evidence.join-consistent" in failing

    def test_verify_tally_shim_parity(self, voted_election):
        from repro.runtime.pipeline import PipelineSpec
        from repro.tally.pipeline import verify_tally

        election, result = voted_election
        args = (election.group, election.setup.authority, election.setup.board, result)
        assert verify_tally(*args)
        assert verify_tally(*args, batch=False)
        assert verify_tally(*args, pipeline=PipelineSpec(streaming=True, shard_size=4))
        tampered = replace(result, counts={**result.counts, 0: result.counts[0] + 5})
        assert not verify_tally(election.group, election.setup.authority, election.setup.board, tampered)

    def test_audit_without_result_checks_board_only(self, voted_election):
        election, _ = voted_election
        report = audit_election(
            election.setup.board,
            election.config,
            kiosk_public_keys=election.setup.registrar.kiosk_public_keys,
        )
        assert report.ok
        kinds = report.counts_by_kind()
        assert kinds["ledger-chain"][0] == 3
        assert kinds["schnorr"][0] == 2 * election.config.num_voters

    def test_result_without_authority_raises(self, voted_election):
        election, result = voted_election
        with pytest.raises(ValueError, match="authority"):
            audit_election(election.setup.board, election.config, result=result)

    def test_config_audit_spec_selects_strategy(self, voted_election):
        election, _ = voted_election
        config = replace_config(election.config, audit_spec="batched:32")
        report = audit_election(election.setup.board, config)
        assert report.strategy == "batched"
        assert report.ok

    def test_election_report_records_audit(self):
        config = ElectionConfig(
            num_voters=3, num_options=2, proof_rounds=2, num_mixers=2,
            audit_evidence=True, audit_spec="batched",
        )
        with VotegralElection(config) as election:
            report = election.run(rng=random.Random(3))
            assert report.universally_verified
            assert election.audit_report is not None
            assert election.audit_report.ok
            assert election.audit_report.strategy == "batched"


def replace_config(config: ElectionConfig, **kwargs) -> ElectionConfig:
    from dataclasses import replace as dc_replace

    return dc_replace(config, **kwargs)


class TestBatchedBoardAudit:
    def test_batched_board_adds_batch_chain_check(self):
        config = ElectionConfig(
            num_voters=3, num_options=2, proof_rounds=2, num_mixers=2, board_spec="batched:4"
        )
        with VotegralElection(config) as election:
            election.run_setup()
            election.run_registration()
            election.run_voting(rng=random.Random(5))
            result = election.run_tally(verify=False)
            report = audit_election(
                election.setup.board,
                config,
                authority=election.setup.authority,
                result=result,
            )
            assert report.ok
            assert report.counts_by_kind()["batch-chain"] == (1, 0)


class TestVerifierClasses:
    def test_explicit_verifier_instances_accepted(self, voted_election):
        election, result = voted_election
        for verifier in (EagerVerifier(), BatchedVerifier(chunk_size=16), StreamingVerifier(shard_size=8)):
            report = audit_tally(
                election.group, election.setup.authority, election.setup.board, result,
                verifier=verifier,
            )
            assert report.ok


class TestCommandLine:
    def test_cli_passes_and_agrees(self, capsys):
        from repro.audit.__main__ import main

        code = main(["--voters", "3", "--seed", "11", "--proof-rounds", "2", "--mixers", "2"])
        output = capsys.readouterr().out
        assert code == 0
        assert "PASS: election verified under every strategy" in output
        assert "strategies agree" in output

    def test_cli_no_evidence_flag(self, capsys):
        from repro.audit.__main__ import main

        code = main(
            ["--voters", "2", "--seed", "1", "--proof-rounds", "2", "--mixers", "1",
             "--strategies", "batched", "--no-evidence"]
        )
        assert code == 0
        assert "audit[batched]" in capsys.readouterr().out
