"""The documentation gate: docs stay link-valid and their examples run.

Two checks over ``docs/*.md`` (plus the README):

* every relative markdown link resolves to a file that exists in the repo
  (external ``http(s)`` links are out of scope — CI must not flake on the
  network);
* every fenced code block containing doctest examples (``>>>``) executes
  cleanly via :mod:`doctest`, so the documented API calls cannot rot.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_FILES = sorted(REPO_ROOT.glob("docs/*.md")) + [REPO_ROOT / "README.md"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```(?:python|pycon)\n(.*?)```", re.DOTALL)


def _doc_ids():
    return [str(path.relative_to(REPO_ROOT)) for path in DOC_FILES]


def test_docs_tree_exists():
    names = {path.name for path in REPO_ROOT.glob("docs/*.md")}
    assert {"architecture.md", "performance.md", "benchmarks.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_relative_links_resolve(doc):
    text = doc.read_text()
    broken = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:  # same-file anchor
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative link(s): {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_fenced_examples_run(doc):
    text = doc.read_text()
    blocks = [block for block in _FENCE.findall(text) if ">>>" in block]
    if not blocks:
        pytest.skip(f"{doc.name} has no doctest examples")
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
    for index, block in enumerate(blocks):
        test = parser.get_doctest(block, {}, f"{doc.name}[{index}]", str(doc), 0)
        runner.run(test)
    assert runner.failures == 0, f"{doc.name}: {runner.failures} doctest failure(s)"
