"""The §7.5 usability-study model."""

import pytest

from repro.usability.behavior import BehaviorProfile, PUBLISHED_STUDY, VoterBehaviorModel
from repro.usability.study import UsabilityStudy, run_published_study


class TestBehaviorModel:
    def test_published_profile_rates(self):
        assert PUBLISHED_STUDY.registration_success_rate == pytest.approx(0.83)
        assert PUBLISHED_STUDY.detection_rate_educated == pytest.approx(0.47)
        assert PUBLISHED_STUDY.detection_rate_uneducated == pytest.approx(0.10)
        assert PUBLISHED_STUDY.sus_mean == pytest.approx(70.4)

    def test_seeded_model_is_reproducible(self):
        a = VoterBehaviorModel(seed=3)
        b = VoterBehaviorModel(seed=3)
        assert [a.completes_registration() for _ in range(20)] == [
            b.completes_registration() for _ in range(20)
        ]

    def test_sus_scores_clamped(self):
        model = VoterBehaviorModel(profile=BehaviorProfile(sus_mean=99, sus_std=50), seed=1)
        assert all(0 <= model.sus_score() <= 100 for _ in range(50))

    def test_detection_rate_reflects_education(self):
        model = VoterBehaviorModel(seed=5)
        educated = sum(model.detects_malicious_kiosk(True) for _ in range(2000)) / 2000
        model = VoterBehaviorModel(seed=5)
        uneducated = sum(model.detects_malicious_kiosk(False) for _ in range(2000)) / 2000
        assert educated == pytest.approx(0.47, abs=0.05)
        assert uneducated == pytest.approx(0.10, abs=0.04)

    def test_fake_credential_count_nonnegative(self):
        model = VoterBehaviorModel(seed=9)
        assert all(model.num_fake_credentials() >= 0 for _ in range(50))


class TestStudySimulation:
    @pytest.fixture(scope="class")
    def results(self):
        return run_published_study(seed=7)

    def test_participant_count(self, results):
        assert results.participants == 150

    def test_success_rate_near_published_value(self, results):
        assert results.success_rate == pytest.approx(0.83, abs=0.08)

    def test_sus_near_published_value(self, results):
        assert results.sus_mean == pytest.approx(70.4, abs=5.0)

    def test_detection_rates_ordered(self, results):
        assert results.detection_rate_educated > results.detection_rate_uneducated

    def test_kiosk_survival_is_small_for_fifty_voters(self, results):
        assert results.kiosk_survival_probability(50) < 0.2
        assert results.kiosk_survival_probability(1000) < 1e-10

    def test_smaller_study_runs(self):
        results = UsabilityStudy(participants=20, seed=1).run()
        assert results.participants == 20
        assert 0 <= results.success_rate <= 1
