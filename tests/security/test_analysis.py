"""Analytic bounds: Theorem IV and the §7.5 detection arithmetic."""

import math

import pytest

from repro.security.analysis import (
    EDUCATED_VOTERS,
    UNEDUCATED_VOTERS,
    geometric_credential_distribution,
    iv_adversary_success_bound,
    iv_success_over_population,
    kiosk_undetected_probability,
    uniform_credential_distribution,
)


class TestCredentialDistributions:
    def test_uniform_sums_to_one(self):
        distribution = uniform_credential_distribution(4)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert set(distribution) == {1, 2, 3, 4}

    def test_geometric_sums_to_one(self):
        distribution = geometric_credential_distribution(1.5)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert min(distribution) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            uniform_credential_distribution(0)
        with pytest.raises(ValueError):
            geometric_credential_distribution(-1)


class TestTheoremIVBound:
    def test_single_envelope_single_credential_is_certain(self):
        # One envelope, voters always create exactly one credential: stuffing
        # that envelope always succeeds — the degenerate worst case.
        assert iv_adversary_success_bound(1, {1: 1.0}) == pytest.approx(1.0)

    def test_more_envelopes_lower_bound(self):
        distribution = {2: 1.0}
        small = iv_adversary_success_bound(10, distribution)
        large = iv_adversary_success_bound(100, distribution)
        assert large < small

    def test_fake_credentials_help(self):
        """Voters who always make a fake credential are harder to attack than
        voters who never do (with the same booth size)."""
        never_fake = iv_adversary_success_bound(20, {1: 1.0})
        always_fake = iv_adversary_success_bound(20, {2: 1.0})
        assert always_fake < never_fake

    def test_bound_is_probability(self):
        bound = iv_adversary_success_bound(50, uniform_credential_distribution(5))
        assert 0.0 <= bound <= 1.0

    def test_best_k_reported(self):
        bound, best_k = iv_adversary_success_bound(20, {2: 1.0}, return_best_k=True)
        assert 1 <= best_k <= 20
        assert bound == pytest.approx(iv_adversary_success_bound(20, {2: 1.0}))

    def test_known_closed_form_single_fake(self):
        """With n_c = 2 fixed, the bound is max_k (k/n)·(n−k)/(n−1): maximized at k ≈ n/2."""
        n = 20
        expected = max((k / n) * (n - k) / (n - 1) for k in range(1, n + 1))
        assert iv_adversary_success_bound(n, {2: 1.0}) == pytest.approx(expected)

    def test_distribution_must_sum_to_one(self):
        with pytest.raises(ValueError):
            iv_adversary_success_bound(10, {1: 0.7})

    def test_iteration_over_population_decays_geometrically(self):
        distribution = uniform_credential_distribution(3)
        single = iv_adversary_success_bound(40, distribution)
        ten = iv_success_over_population(40, distribution, 10)
        assert ten == pytest.approx(single**10)
        assert ten < single


class TestKioskDetection:
    def test_paper_headline_numbers(self):
        """§7.5: P[undetected over 50 voters] < 1 % at a 10 % detection rate,
        and ≈ 2^-152 for 1000 voters."""
        fifty = kiosk_undetected_probability(0.10, 50)
        thousand = kiosk_undetected_probability(0.10, 1000)
        assert fifty < 0.01
        assert math.log2(thousand) == pytest.approx(-152, abs=1)

    def test_educated_voters_detect_faster(self):
        assert EDUCATED_VOTERS.survival_probability(10) < UNEDUCATED_VOTERS.survival_probability(10)

    def test_zero_detection_rate_never_detects(self):
        assert kiosk_undetected_probability(0.0, 1000) == 1.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            kiosk_undetected_probability(1.5, 10)
