"""Privacy adversary (Appendix F.2) and multi-registrar deployments.

The privacy adversary can compromise all but one election-authority member
and read the whole ledger, but cannot touch the voter's device.  Its goal is
to learn a voter's real vote.  These tests exercise the three places a ballot
is electronically visible — the device, the ballot ledger and the final tally
— and check that partial-authority compromise reveals nothing, plus the
multi-kiosk / multi-official deployment shape the threat model assumes.
"""

import pytest

from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.registration.kiosk import Kiosk
from repro.registration.official import RegistrationOfficial
from repro.registration.protocol import RegistrationSession, run_registration
from repro.registration.setup import ElectionSetup
from repro.registration.voter import Voter
from repro.tally.pipeline import TallyPipeline
from repro.voting.client import VotingClient


def _client(setup, outcome) -> VotingClient:
    client = VotingClient(
        group=setup.group, board=setup.board, authority_public_key=setup.authority_public_key
    )
    for report in outcome.activation_reports:
        client.add_credential(report.credential)
    return client


class TestPrivacyAdversary:
    def test_ballot_on_ledger_is_not_decryptable_by_partial_authority(self, small_setup):
        """All-but-one authority members together cannot decrypt a posted ballot."""
        group = small_setup.group
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=0))
        _client(small_setup, outcome).cast_real(1, 2)

        record = small_setup.board.ballots()[0]
        ciphertext = ElGamalCiphertext(record.ciphertext_c1, record.ciphertext_c2)
        elgamal = ElGamal(group)
        compromised = small_setup.authority.members[:-1]
        partial_secret = sum(member.secret for member in compromised) % group.order
        plaintext_guess = elgamal.decrypt(partial_secret, ciphertext)
        assert plaintext_guess != group.encode_int(1)
        assert plaintext_guess != group.encode_int(0)

    def test_registration_tag_is_not_decryptable_by_partial_authority(self, small_setup):
        """The public credential tag (ledger) hides the real credential key."""
        group = small_setup.group
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=1))
        record = small_setup.board.registration_for("alice")
        tag = ElGamalCiphertext(record.public_credential_c1, record.public_credential_c2)
        real_key = outcome.vsd.real_credentials()[0].public_key
        elgamal = ElGamal(group)
        partial_secret = sum(m.secret for m in small_setup.authority.members[:-1]) % group.order
        assert elgamal.decrypt(partial_secret, tag) != real_key

    def test_coercer_cannot_confirm_a_credential_by_reencrypting(self, small_setup):
        """§5.2: encrypting a surrendered credential's key under A_pk does not
        reproduce the tag on the ledger (encryption is randomized)."""
        group = small_setup.group
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=1))
        record = small_setup.board.registration_for("alice")
        tag = ElGamalCiphertext(record.public_credential_c1, record.public_credential_c2)
        surrendered = outcome.voter.surrender_credentials_to_coercer()[0]
        fake_key = group.power(surrendered.receipt.response_code.credential_secret)
        elgamal = ElGamal(group)
        recomputed = elgamal.encrypt(small_setup.authority_public_key, fake_key)
        assert recomputed != tag

    def test_mixed_tally_unlinks_ballots_from_submission_order(self, small_setup):
        """After the mix cascade the counted ciphertexts differ from every
        ledger ciphertext, so position-based linking fails."""
        votes = {"alice": 1, "bob": 0, "carol": 1}
        session = RegistrationSession(setup=small_setup)
        for voter_id, choice in votes.items():
            outcome = session.register(Voter(voter_id, num_fake_credentials=0))
            _client(small_setup, outcome).cast_real(choice, 2)
        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        ledger_ciphertexts = {
            (record.ciphertext_c1, record.ciphertext_c2) for record in small_setup.board.ballots()
        }
        for counted in result.filter_result.counted:
            assert (counted.c1, counted.c2) not in ledger_ciphertexts


class TestMultiRegistrarDeployment:
    def test_multiple_kiosks_and_officials(self, group):
        """Voters registered at different kiosks/officials all tally correctly."""
        setup = ElectionSetup.run(
            group,
            ["v1", "v2", "v3", "v4"],
            num_authority_members=3,
            num_officials=2,
            num_kiosks=2,
        )
        clients = {}
        for index, voter_id in enumerate(["v1", "v2", "v3", "v4"]):
            kiosk = Kiosk(
                group=group,
                keypair=setup.registrar.kiosk_keys[index % 2],
                authority_public_key=setup.authority_public_key,
                shared_mac_key=setup.registrar.shared_mac_key,
            )
            official = RegistrationOfficial(
                group=group,
                keypair=setup.registrar.official_keys[index % 2],
                shared_mac_key=setup.registrar.shared_mac_key,
                board=setup.board,
                kiosk_public_keys=setup.registrar.kiosk_public_keys,
            )
            session = RegistrationSession(setup=setup, kiosk=kiosk, official=official)
            outcome = session.register(Voter(voter_id, num_fake_credentials=0))
            clients[voter_id] = _client(setup, outcome)
        for voter_id, choice in zip(clients, (0, 1, 1, 1)):
            clients[voter_id].cast_real(choice, 2)
        result = TallyPipeline(group, setup.authority, num_mixers=2, proof_rounds=2).run(
            setup.board, num_options=2
        )
        assert result.counts == {0: 1, 1: 3}

    def test_credential_from_one_kiosk_rejected_by_official_with_other_roster(self, group):
        """A check-out ticket signed by a kiosk outside the registrar's
        authorized set is rejected (credential-signing defence, §4.5)."""
        setup = ElectionSetup.run(group, ["v1"], num_authority_members=2, num_kiosks=1)
        foreign = ElectionSetup.run(group, ["v1"], num_authority_members=2, num_kiosks=1)
        foreign_kiosk = Kiosk(
            group=group,
            keypair=foreign.registrar.kiosk_keys[0],
            authority_public_key=setup.authority_public_key,
            shared_mac_key=setup.registrar.shared_mac_key,
        )
        official = RegistrationOfficial(
            group=group,
            keypair=setup.registrar.official_keys[0],
            shared_mac_key=setup.registrar.shared_mac_key,
            board=setup.board,
            kiosk_public_keys=setup.registrar.kiosk_public_keys,
        )
        session = foreign_kiosk.authorize(official.check_in("v1"))
        foreign_kiosk.begin_real_credential(session)
        envelope = Voter.pick_envelope(setup.envelope_supply, symbol=session.pending_symbol)
        foreign_kiosk.complete_real_credential(session, envelope)
        from repro.errors import RegistrationError

        with pytest.raises(RegistrationError):
            official.check_out_ticket(session.check_out_ticket)
