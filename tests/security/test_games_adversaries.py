"""Security games and adversary implementations."""

import pytest

from repro.crypto.chaum_pedersen import chaum_pedersen_verify
from repro.registration.official import RegistrationOfficial
from repro.registration.voter import Voter
from repro.registration.vsd import VoterSupportingDevice
from repro.security.adversary import Coercer, CoercionDemand
from repro.security.analysis import uniform_credential_distribution
from repro.security.games import CoercionResistanceExperiment, IndividualVerifiabilityGame
from repro.security.malicious_kiosk import WrongOrderKiosk


class TestIndividualVerifiabilityGame:
    def test_empirical_rate_close_to_analytic_bound(self):
        distribution = {2: 1.0}
        game = IndividualVerifiabilityGame(num_envelopes=20, stuffed=10, credential_distribution=distribution)
        result = game.run(trials=4000)
        # The analytic bound maximizes over k; with k = n/2 the empirical rate
        # should approach it (within Monte-Carlo noise).
        assert result.empirical_rate == pytest.approx(result.analytic_bound, abs=0.03)

    def test_empirical_rate_never_far_above_bound(self):
        distribution = uniform_credential_distribution(4)
        bound_game = IndividualVerifiabilityGame(20, 5, distribution)
        result = bound_game.run(trials=4000)
        assert result.empirical_rate <= result.analytic_bound + 0.03

    def test_stuffing_everything_gets_detected_when_voters_make_fakes(self):
        game = IndividualVerifiabilityGame(num_envelopes=10, stuffed=10, credential_distribution={3: 1.0})
        result = game.run(trials=500)
        assert result.adversary_wins == 0
        assert result.duplicates_detected == 500

    def test_single_stuffed_envelope_rarely_wins(self):
        game = IndividualVerifiabilityGame(num_envelopes=50, stuffed=1, credential_distribution={2: 1.0})
        result = game.run(trials=2000)
        assert result.empirical_rate < 0.06


class TestCoercer:
    def test_coercer_receives_only_fakes(self, small_setup):
        from repro.registration.protocol import run_registration

        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=2))
        coercer = Coercer(CoercionDemand(demanded_fake_credentials=1, demanded_vote=0))
        handed = coercer.collect_credentials(outcome.voter)
        real_secret = outcome.voter.real_credential().receipt.response_code.credential_secret
        assert handed
        assert all(c.receipt.response_code.credential_secret != real_secret for c in handed)

    def test_ledger_view_is_aggregate_only(self, small_setup):
        from repro.registration.protocol import run_registration

        run_registration(small_setup, Voter("alice", num_fake_credentials=1))
        coercer = Coercer(CoercionDemand(1, 0))
        view = coercer.ledger_view(small_setup.board)
        assert set(view) == {"registrations", "envelope_challenges_used", "ballots"}

    def test_demand_totals(self):
        demand = CoercionDemand(demanded_fake_credentials=3, demanded_vote=1)
        assert demand.demanded_total_credentials == 4


class TestCoercionResistanceExperiment:
    def test_random_guessing_has_no_advantage_by_construction(self):
        experiment = CoercionResistanceExperiment(num_voters=4)
        advantage = experiment.run(trials=4)
        assert 0.0 <= advantage <= 0.5

    def test_counting_credentials_gives_no_advantage(self):
        """A coercer that guesses from the number of surrendered credentials
        learns nothing: the voter always hands over the demanded number."""
        experiment = CoercionResistanceExperiment(num_voters=4, demanded_fakes=1)
        advantage = experiment.run(
            trials=6,
            guess_strategy=lambda view: view.surrendered_credentials < 1,
        )
        # The strategy degenerates to a constant guess, so its success rate is
        # exactly 1/2 over the balanced trial schedule.
        assert advantage == pytest.approx(0.0, abs=1e-9)


class TestWrongOrderKiosk:
    def _actors(self, setup):
        kiosk = WrongOrderKiosk(
            group=setup.group,
            keypair=setup.registrar.kiosk_keys[0],
            authority_public_key=setup.authority_public_key,
            shared_mac_key=setup.registrar.shared_mac_key,
        )
        official = RegistrationOfficial(
            group=setup.group,
            keypair=setup.registrar.official_keys[0],
            shared_mac_key=setup.registrar.shared_mac_key,
            board=setup.board,
            kiosk_public_keys=setup.registrar.kiosk_public_keys,
        )
        return kiosk, official

    def test_attack_produces_wrong_observable_order(self, small_setup):
        kiosk, official = self._actors(small_setup)
        session = kiosk.authorize(official.check_in("alice"))
        envelope = small_setup.envelope_supply[0]
        kiosk.issue_claimed_real_credential(session, envelope)
        # The voter-observable Σ order is NOT the sound order: a trained voter
        # can notice (this is what the §7.5 detection rates measure).
        assert not session.real_sigma.is_sound_order

    def test_attack_survives_activation_checks(self, small_setup):
        """The forged credential passes every device-side check — detection
        rests entirely on the voter noticing the wrong order in the booth."""
        kiosk, official = self._actors(small_setup)
        voter = Voter("alice", num_fake_credentials=0)
        session = kiosk.authorize(official.check_in("alice"))
        envelope = small_setup.envelope_supply[0]
        receipt = kiosk.issue_claimed_real_credential(session, envelope)
        credential = voter.assemble_credential(receipt, envelope, is_real=True, observed_sound_order=False)
        official.check_out_ticket(session.check_out_ticket)
        vsd = VoterSupportingDevice(
            group=small_setup.group,
            board=small_setup.board,
            voter_id="alice",
            kiosk_public_keys=small_setup.registrar.kiosk_public_keys,
            authority_public_key=small_setup.authority_public_key,
        )
        report = vsd.activate(credential)
        assert report.success

    def test_attack_steals_the_counting_credential(self, small_setup):
        kiosk, official = self._actors(small_setup)
        session = kiosk.authorize(official.check_in("alice"))
        receipt = kiosk.issue_claimed_real_credential(session, small_setup.envelope_supply[0])
        victim_public = small_setup.group.power(receipt.response_code.credential_secret)
        decrypted_tag = small_setup.authority.decrypt(receipt.commit_code.public_credential)
        # The tag encrypts the adversary's key, not the victim's.
        assert decrypted_tag != victim_public
        assert decrypted_tag == kiosk.stolen_keypairs[0].public

    def test_forged_transcript_still_verifies_on_paper(self, small_setup):
        kiosk, official = self._actors(small_setup)
        session = kiosk.authorize(official.check_in("alice"))
        envelope = small_setup.envelope_supply[0]
        receipt = kiosk.issue_claimed_real_credential(session, envelope)
        group = small_setup.group
        victim_public = group.power(receipt.response_code.credential_secret)
        statement = kiosk._statement(receipt.commit_code.public_credential, victim_public)
        from repro.crypto.chaum_pedersen import ChaumPedersenTranscript

        transcript = ChaumPedersenTranscript(
            statement=statement,
            commit=receipt.commit_code.commit,
            challenge=envelope.challenge,
            response=receipt.response_code.zkp_response,
        )
        assert chaum_pedersen_verify(transcript)
