"""Property-based tests on the ledger, codec and tally invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.modp_group import testing_group
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.ledger.log import AppendOnlyLog
from repro.registration.codec import Decoder, Encoder
from repro.security.analysis import iv_adversary_success_bound
from repro.tally.decrypt import aggregate
from repro.tally.filter import deduplicate_ballots
from repro.tally.decrypt import DecryptedVote

GROUP = testing_group()
FAST = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestLedgerProperties:
    @FAST
    @given(payloads=st.lists(st.binary(min_size=0, max_size=64), min_size=0, max_size=30))
    def test_any_append_sequence_verifies(self, payloads):
        log = AppendOnlyLog()
        for payload in payloads:
            log.append(payload)
        assert log.verify_chain()
        assert len(log) == len(payloads)

    @FAST
    @given(
        payloads=st.lists(st.binary(min_size=0, max_size=32), min_size=1, max_size=20),
        data=st.data(),
    )
    def test_every_entry_has_valid_inclusion_proof(self, payloads, data):
        log = AppendOnlyLog()
        for payload in payloads:
            log.append(payload)
        index = data.draw(st.integers(min_value=0, max_value=len(payloads) - 1))
        assert AppendOnlyLog.verify_inclusion(log.inclusion_proof(index))


class TestCodecProperties:
    @FAST
    @given(
        text=st.text(max_size=40),
        blob=st.binary(max_size=60),
        value=st.integers(min_value=0, max_value=GROUP.order - 1),
    )
    def test_roundtrip(self, text, blob, value):
        encoded = Encoder().put_str(text).put_bytes(blob).put_int(value, GROUP).bytes()
        decoder = Decoder(encoded)
        assert decoder.get_str() == text
        assert decoder.get_bytes() == blob
        assert decoder.get_int() == value
        assert decoder.exhausted


class TestTallyInvariants:
    @FAST
    @given(choices=st.lists(st.integers(min_value=0, max_value=4), max_size=50))
    def test_aggregate_conserves_ballots(self, choices):
        votes = [DecryptedVote(choice) for choice in choices]
        counts = aggregate(votes, num_options=5)
        assert sum(counts.values()) == len(choices)
        assert set(counts) == set(range(5))

    @FAST
    @given(num_casts=st.lists(st.integers(min_value=1, max_value=4), min_size=0, max_size=10))
    def test_deduplication_keeps_one_ballot_per_credential(self, num_casts):
        from repro.crypto.elgamal import ElGamal
        from repro.ledger.bulletin_board import BallotRecord

        elgamal = ElGamal(GROUP)
        records = []
        for casts in num_casts:
            keypair = schnorr_keygen(GROUP)
            for _ in range(casts):
                ciphertext = elgamal.encrypt(GROUP.power(3), GROUP.power(1))
                records.append(
                    BallotRecord(
                        credential_public_key=keypair.public,
                        ciphertext_c1=ciphertext.c1,
                        ciphertext_c2=ciphertext.c2,
                        signature=schnorr_sign(keypair, b"b"),
                    )
                )
        assert len(deduplicate_ballots(records)) == len(num_casts)


class TestTheoremIVProperties:
    @FAST
    @given(
        num_envelopes=st.integers(min_value=2, max_value=60),
        max_credentials=st.integers(min_value=1, max_value=5),
    )
    def test_bound_is_a_probability(self, num_envelopes, max_credentials):
        from repro.security.analysis import uniform_credential_distribution

        bound = iv_adversary_success_bound(num_envelopes, uniform_credential_distribution(max_credentials))
        assert 0.0 <= bound <= 1.0

    @FAST
    @given(num_envelopes=st.integers(min_value=4, max_value=50))
    def test_more_fakes_never_helps_the_adversary(self, num_envelopes):
        lazy = iv_adversary_success_bound(num_envelopes, {1: 1.0})
        diligent = iv_adversary_success_bound(num_envelopes, {3: 1.0})
        assert diligent <= lazy + 1e-12
