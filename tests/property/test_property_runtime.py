"""Property-based tests (hypothesis) on the runtime subsystem."""

from __future__ import annotations

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.elgamal import ElGamal
from repro.crypto.modp_group import testing_group as toy_group
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.runtime.batch import (
    batch_reencryption_verify,
    batch_schnorr_verify,
    verify_signatures,
)
from repro.runtime.executor import SerialExecutor, ThreadExecutor, chunk_evenly
from repro.runtime.precompute import FixedBaseTable

GROUP = toy_group()
ELGAMAL = ElGamal(GROUP)
ORDER = GROUP.order

scalars = st.integers(min_value=1, max_value=ORDER - 1)

FAST = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])

# Built once: signing 30+ fresh batches per example would dominate the suite.
_KEYPAIRS = [schnorr_keygen(GROUP) for _ in range(6)]
_SIGNED = [
    (kp.public, f"msg-{index}".encode(), schnorr_sign(kp, f"msg-{index}".encode()))
    for index, kp in enumerate(_KEYPAIRS)
]


class TestFixedBaseTableProperties:
    @FAST
    @given(exponent=st.integers(min_value=-(2 * ORDER), max_value=2 * ORDER), window=st.integers(1, 8))
    def test_table_power_matches_reference(self, exponent, window):
        table = FixedBaseTable(GROUP.generator, window_bits=window)
        assert table.power(exponent) == GROUP.generator.exponentiate(exponent)

    @FAST
    @given(seed=st.binary(min_size=1, max_size=16), exponent=scalars)
    def test_arbitrary_bases(self, seed, exponent):
        base = GROUP.hash_to_element(seed)
        table = FixedBaseTable(base, window_bits=4)
        assert table.power(exponent) == base.exponentiate(exponent)


class TestBatchRejectionProperties:
    @FAST
    @given(tamper_index=st.integers(0, len(_SIGNED) - 1), delta=scalars)
    def test_any_single_tampered_signature_is_rejected(self, tamper_index, delta):
        items = list(_SIGNED)
        public, message, signature = items[tamper_index]
        forged = dataclasses.replace(signature, response=(signature.response + delta) % ORDER)
        items[tamper_index] = (public, message, forged)
        assert batch_schnorr_verify(items) is False
        verdicts = verify_signatures(items, chunk_size=2)
        assert verdicts == [index != tamper_index for index in range(len(items))]

    @FAST
    @given(tamper_index=st.integers(0, 5), delta=scalars)
    def test_any_single_tampered_reencryption_is_rejected(self, tamper_index, delta):
        keypair = ELGAMAL.keygen(secret=424242)
        items = []
        for index in range(6):
            source = ELGAMAL.encrypt(keypair.public, GROUP.hash_to_element(bytes([index])), randomness=index + 1)
            randomness = (index * 7 + 5) % ORDER
            items.append((source, ELGAMAL.reencrypt(keypair.public, source, randomness), randomness))
        assert batch_reencryption_verify(ELGAMAL, keypair.public, items)
        source, target, randomness = items[tamper_index]
        items[tamper_index] = (source, target, (randomness + delta) % ORDER)
        assert batch_reencryption_verify(ELGAMAL, keypair.public, items) is False


class TestExecutorProperties:
    @FAST
    @given(items=st.lists(st.integers(), max_size=64), num_chunks=st.integers(1, 80))
    def test_chunking_partitions_in_order(self, items, num_chunks):
        chunks = chunk_evenly(items, num_chunks)
        assert [x for chunk in chunks for x in chunk] == items
        if items:
            sizes = [len(chunk) for chunk in chunks]
            assert min(sizes) >= 1
            assert max(sizes) - min(sizes) <= 1

    @FAST
    @given(items=st.lists(st.integers(min_value=-(10**6), max_value=10**6), max_size=40))
    def test_backends_agree_with_builtin_map(self, items):
        with ThreadExecutor(num_workers=2) as threaded:
            assert (
                SerialExecutor().map(abs, items)
                == threaded.map(abs, items, chunksize=3)
                == list(map(abs, items))
            )
