"""Property-based tests (hypothesis) on the cryptographic substrate."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.chaum_pedersen import (
    ChaumPedersenProver,
    ChaumPedersenStatement,
    chaum_pedersen_verify,
    simulate_chaum_pedersen,
)
from repro.crypto.elgamal import ElGamal
from repro.crypto.modp_group import testing_group
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign, schnorr_verify
from repro.crypto.shamir import reconstruct_secret, split_secret

GROUP = testing_group()
ELGAMAL = ElGamal(GROUP)
ORDER = GROUP.order

scalars = st.integers(min_value=1, max_value=ORDER - 1)
small_ints = st.integers(min_value=0, max_value=500)

FAST = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestGroupProperties:
    @FAST
    @given(a=scalars, b=scalars)
    def test_exponent_homomorphism(self, a, b):
        assert GROUP.power(a) * GROUP.power(b) == GROUP.power((a + b) % ORDER)

    @FAST
    @given(a=scalars)
    def test_inverse_cancels(self, a):
        element = GROUP.power(a)
        assert element * element.inverse() == GROUP.identity

    @FAST
    @given(a=scalars)
    def test_encoding_roundtrip(self, a):
        element = GROUP.power(a)
        assert GROUP.element_from_bytes(element.to_bytes()) == element

    @FAST
    @given(a=scalars, b=scalars)
    def test_diffie_hellman_symmetry(self, a, b):
        assert GROUP.power(a) ** b == GROUP.power(b) ** a


class TestElGamalProperties:
    @FAST
    @given(secret=scalars, message_exponent=scalars, randomness=scalars)
    def test_decryption_inverts_encryption(self, secret, message_exponent, randomness):
        keys = ELGAMAL.keygen(secret)
        message = GROUP.power(message_exponent)
        assert ELGAMAL.decrypt(secret, ELGAMAL.encrypt(keys.public, message, randomness)) == message

    @FAST
    @given(secret=scalars, message_exponent=scalars, r1=scalars, r2=scalars)
    def test_reencryption_preserves_plaintext(self, secret, message_exponent, r1, r2):
        keys = ELGAMAL.keygen(secret)
        message = GROUP.power(message_exponent)
        ciphertext = ELGAMAL.encrypt(keys.public, message, r1)
        assert ELGAMAL.decrypt(secret, ELGAMAL.reencrypt(keys.public, ciphertext, r2)) == message

    @FAST
    @given(secret=scalars, a=small_ints, b=small_ints)
    def test_homomorphic_addition(self, secret, a, b):
        keys = ELGAMAL.keygen(secret)
        combined = ELGAMAL.encrypt_int(keys.public, a).multiply(ELGAMAL.encrypt_int(keys.public, b))
        assert ELGAMAL.decrypt_int(secret, combined, max_value=1000) == a + b


class TestSchnorrProperties:
    @FAST
    @given(secret=scalars, message=st.binary(min_size=0, max_size=64))
    def test_signatures_always_verify(self, secret, message):
        keys = schnorr_keygen(GROUP, secret)
        assert schnorr_verify(keys.public, message, schnorr_sign(keys, message))

    @FAST
    @given(secret=scalars, message=st.binary(min_size=1, max_size=32), other=st.binary(min_size=1, max_size=32))
    def test_signature_does_not_transfer_between_messages(self, secret, message, other):
        if message == other:
            return
        keys = schnorr_keygen(GROUP, secret)
        assert not schnorr_verify(keys.public, other, schnorr_sign(keys, message))


class TestChaumPedersenProperties:
    @FAST
    @given(witness=scalars, challenge=st.integers(min_value=0, max_value=ORDER - 1))
    def test_honest_proofs_always_verify(self, witness, challenge):
        h = GROUP.hash_to_element(b"h")
        statement = ChaumPedersenStatement(GROUP.generator, h, GROUP.power(witness), h ** witness)
        prover = ChaumPedersenProver(statement, witness)
        prover.commit()
        assert chaum_pedersen_verify(prover.respond(challenge))

    @FAST
    @given(
        log_g=scalars,
        log_h=scalars,
        challenge=st.integers(min_value=0, max_value=ORDER - 1),
    )
    def test_simulated_proofs_always_verify_even_for_false_statements(self, log_g, log_h, challenge):
        h = GROUP.hash_to_element(b"h")
        statement = ChaumPedersenStatement(GROUP.generator, h, GROUP.power(log_g), h ** log_h)
        assert chaum_pedersen_verify(simulate_chaum_pedersen(statement, challenge))


class TestShamirProperties:
    @FAST
    @given(
        secret=st.integers(min_value=0, max_value=ORDER - 1),
        threshold=st.integers(min_value=1, max_value=5),
        extra=st.integers(min_value=0, max_value=3),
    )
    def test_any_threshold_subset_reconstructs(self, secret, threshold, extra):
        num_shares = threshold + extra
        shares = split_secret(secret, threshold, num_shares, ORDER)
        assert reconstruct_secret(shares[:threshold], ORDER) == secret
        assert reconstruct_secret(shares[-threshold:], ORDER) == secret
