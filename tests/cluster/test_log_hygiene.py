"""Secret hygiene of the coordinator's log stream (the REP001 contract).

The cluster logger narrates enrollment and fault handling — exactly the
paths that touch the shared secret, handshake nonces, and MAC tags.  These
tests drive the two noisiest paths (a rejected handshake and a worker lost
mid-shard) with *known* secret material and assert none of it reaches the
log records in any rendering (raw bytes repr, hex, or interpolated args).
"""

import logging
import socket
import threading

import pytest

import cluster_tasks

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.executor import RemoteExecutor
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    Frame,
    FrameKind,
    expect_frame,
    hello_mac,
    send_frame,
)
from repro.errors import ClusterError

# Distinctive, grep-able secret material: if any rendering of these bytes
# lands in a log record, the assertions below name the leak precisely.
SECRET = b"TOPSECRET-cluster-enroll-0123456"
WRONG_SECRET = b"WRONGSECRET-intruder-attempt-456"


def _forbidden_renderings(*materials: bytes) -> list:
    tokens = []
    for blob in materials:
        tokens.append(repr(blob))
        tokens.append(blob.hex())
        try:
            tokens.append(blob.decode())
        except UnicodeDecodeError:
            pass
    return tokens


def _assert_log_clean(caplog, materials) -> None:
    tokens = _forbidden_renderings(*materials)
    for record in caplog.records:
        rendered = record.getMessage() + " " + repr(record.args)
        for token in tokens:
            assert token not in rendered, (
                f"secret material leaked into log record: {record.getMessage()!r}"
            )


class TestHandshakeRejectionHygiene:
    def test_rejected_enrollment_logs_no_secret_nonce_or_mac(self, caplog):
        caplog.set_level(logging.DEBUG, logger="repro.cluster.coordinator")
        coordinator = ClusterCoordinator(secret=SECRET)
        try:
            with socket.create_connection(coordinator.address, timeout=10) as sock:
                challenge = expect_frame(sock, FrameKind.CHALLENGE).payload
                nonce = challenge["nonce"]
                tag = hello_mac(WRONG_SECRET, nonce, "intruder", 1)
                send_frame(sock, Frame(FrameKind.HELLO, {
                    "protocol_version": PROTOCOL_VERSION,
                    "worker_id": "intruder",
                    "slots": 1,
                    "nonce": b"intruder-nonce-0",
                    "mac": tag,
                }))
                with pytest.raises(ClusterError):
                    expect_frame(sock, FrameKind.WELCOME)
        finally:
            coordinator.shutdown()
        # The rejection must have been logged (the event is operator-visible)...
        assert any("rejecting enrollment" in r.getMessage() for r in caplog.records)
        # ...but with the failed check named, never the material that failed it.
        _assert_log_clean(
            caplog, [SECRET, WRONG_SECRET, nonce, tag, b"intruder-nonce-0"]
        )


class TestWorkerLossHygiene:
    def test_worker_loss_logs_identity_not_credentials(self, caplog):
        caplog.set_level(logging.DEBUG, logger="repro.cluster.coordinator")
        executor = RemoteExecutor(secret=SECRET, spawn_workers=2)
        try:
            executor.warm()
            victim = executor.worker_processes[0]
            threading.Timer(0.25, victim.kill).start()
            results = executor.starmap(
                cluster_tasks.slow_echo, [(i, 0.05) for i in range(40)]
            )
            assert results == list(range(40))
        finally:
            executor.close()
        # The loss is WARNING-logged with the worker identity and moved keys...
        assert any("lost" in r.getMessage() for r in caplog.records)
        # ...and the whole session's records — enrollment (which carried the
        # real MAC exchange), dispatch chatter, loss, shutdown — hold no
        # rendering of the enrollment secret.
        _assert_log_clean(caplog, [SECRET])
