"""Multi-node tally and audit: bit-identity matrix and fault injection.

The distributed invariant under test: for a fixed randomness tape, a tally
(and its audit) executed across ``cluster:N`` worker subprocesses is
bit-identical — counts, cascades, proofs, filter outcomes, audit
fingerprints — to the serial in-process reference, across Memory and
SQLite boards, and stays so when a worker is killed mid-run (shards are
reassigned at-least-once; every shard is a deterministic function of its
payload, so re-execution cannot drift)."""

from __future__ import annotations

import contextlib
import random
import threading

import pytest

from cluster_tasks import CLUSTER_PAGE_SIZE as PAGE_SIZE
from cluster_tasks import CLUSTER_WORKERS

from repro.audit.api import DistributedVerifier
from repro.audit.checks import audit_tally
from repro.cluster.feeds import cluster_valid_ballots
from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamal
from repro.crypto.group import Group
from repro.crypto.hashing import sha256
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.crypto.tagging import TaggingAuthority
from repro.election import ElectionConfig, VotegralElection
from repro.errors import ClusterError
from repro.ledger.api import as_board_view
from repro.ledger.backends.memory import MemoryBackend
from repro.ledger.backends.sqlite import SQLiteBackend
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.records import RegistrationRecord
from repro.runtime.executor import executor_from_spec
from repro.tally import mixnet
from repro.tally.pipeline import TallyPipeline
from repro.voting.ballot import make_ballot

NUM_VOTERS = 7
NUM_OPTIONS = 2
NUM_MIXERS = 2
PROOF_ROUNDS = 2
SEED = 0xC10C


@contextlib.contextmanager
def seeded_tape(seed: int):
    """Pin the two output-shaping randomness sources (cf. test_equivalence)."""
    rng = random.Random(seed)
    original = (Group.random_scalar, mixnet.random_permutation)
    Group.random_scalar = lambda self: rng.randrange(1, self.order)
    mixnet.random_permutation = lambda n: rng.sample(range(n), n)
    try:
        yield
    finally:
        Group.random_scalar, mixnet.random_permutation = original


@pytest.fixture(scope="module")
def workload(group):
    """One synthetic record sequence; every board ingests the same bytes."""
    authority = DistributedKeyGeneration.run(group, 3)
    elgamal = ElGamal(group)
    kiosk = schnorr_keygen(group)
    official = schnorr_keygen(group)
    voter_ids = [f"voter-{index:04d}" for index in range(NUM_VOTERS)]
    registrations, ballots = [], []
    for index, voter_id in enumerate(voter_ids):
        credential = schnorr_keygen(group)
        tag = elgamal.encrypt(authority.public_key, credential.public)
        registrations.append(
            RegistrationRecord(
                voter_id=voter_id,
                public_credential_c1=tag.c1,
                public_credential_c2=tag.c2,
                kiosk_public_key=kiosk.public,
                kiosk_signature=schnorr_sign(kiosk, sha256(b"checkout", voter_id.encode())),
                official_public_key=official.public,
                official_signature=schnorr_sign(official, sha256(b"approval", voter_id.encode())),
            )
        )
        ballots.append(
            make_ballot(
                group, authority.public_key, credential,
                choice=index % NUM_OPTIONS, num_options=NUM_OPTIONS,
            ).to_record()
        )
    tagging = TaggingAuthority.create(group, authority.num_members)
    return authority, tagging, voter_ids, registrations, ballots


def _ingest(backend, workload):
    _, _, voter_ids, registrations, ballots = workload
    board = BulletinBoard(backend)
    board.publish_electoral_roll(voter_ids)
    for record in registrations:
        board.post_registration(record)
    for record in ballots:
        board.post_ballot(record)
    return board


@pytest.fixture(scope="module")
def boards(group, workload, tmp_path_factory):
    memory = _ingest(MemoryBackend(), workload)
    sqlite = _ingest(
        SQLiteBackend(str(tmp_path_factory.mktemp("cluster") / "board.db"), group=group),
        workload,
    )
    yield {"memory": memory, "sqlite": sqlite}
    memory.close()
    sqlite.close()


def _run_tally(group, authority, tagging, board, executor):
    with seeded_tape(SEED):
        pipeline = TallyPipeline(
            group=group,
            authority=authority,
            num_mixers=NUM_MIXERS,
            proof_rounds=PROOF_ROUNDS,
            executor=executor,
            tagging=tagging,
            read_page_size=PAGE_SIZE,
        )
        return pipeline.run(board, NUM_OPTIONS, "default")


class TestBitIdentityMatrix:
    def test_tally_and_audit_identical_across_executors_and_boards(
        self, group, workload, boards
    ):
        """serial vs cluster:N vs cluster:2N × Memory vs SQLite — one result."""
        authority, tagging, _, _, _ = workload
        specs = ["serial", f"cluster:{CLUSTER_WORKERS}", f"cluster:{2 * CLUSTER_WORKERS}"]
        heads_before = {
            name: (board.ballot_log.head(), board.registration_log.head())
            for name, board in boards.items()
        }

        results, fingerprints = {}, {}
        for board_name, board in boards.items():
            for spec in specs:
                executor = executor_from_spec(spec)
                try:
                    result = _run_tally(group, authority, tagging, board, executor)
                    # Serial audits use the default batched strategy; cluster
                    # audits ship check shards to the remote workers.
                    verifier = "batched" if spec == "serial" else "dist:16"
                    report = audit_tally(
                        group, authority, board, result,
                        verifier=verifier, executor=executor,
                    )
                finally:
                    executor.close()
                assert report.ok, f"{board_name}/{spec}: {report.summary()}"
                results[(board_name, spec)] = result
                fingerprints[(board_name, spec)] = report.fingerprint()

        reference = results[("memory", "serial")]
        assert reference.num_counted == NUM_VOTERS
        for key, result in results.items():
            assert result == reference, f"{key} tally differs from the serial reference"
        assert len(set(fingerprints.values())) == 1, fingerprints

        # The boards were only read: bit-identical chain heads across
        # backends, unchanged by any tally, and still verifying.
        for name, board in boards.items():
            assert (
                board.ballot_log.head(), board.registration_log.head()
            ) == heads_before[name]
            assert board.verify_all_chains()
        assert boards["memory"].ballot_log.head() == boards["sqlite"].ballot_log.head()
        assert (
            boards["memory"].registration_log.head()
            == boards["sqlite"].registration_log.head()
        )

    def test_cursor_feed_matches_local_read_and_acks_to_the_end(
        self, group, workload, boards, cluster_executor
    ):
        authority, _, _, _, ballots = workload
        view = as_board_view(boards["memory"])
        local = TallyPipeline(group, authority, read_page_size=PAGE_SIZE)._valid_ballots(
            view, "default", executor=None
        )
        valid, tracker = cluster_valid_ballots(
            view, "default", cluster_executor, page_size=PAGE_SIZE
        )
        from repro.tally.filter import deduplicate_ballots

        assert deduplicate_ballots(valid) == local
        assert tracker.num_pending == 0
        # The watermark reached the cursor a resumed read would continue from.
        final_page = view.read_ballots(since=0, limit=len(ballots) + 1)
        assert tracker.acked_cursor == final_page.next_cursor


class TestClusterElectionEndToEnd:
    def test_config_spec_cluster_election_verifies(self):
        """The acceptance path: executor_spec='cluster:N' + audit_spec='dist'."""
        config = ElectionConfig(
            num_voters=4,
            num_mixers=NUM_MIXERS,
            proof_rounds=PROOF_ROUNDS,
            executor_spec=f"cluster:{CLUSTER_WORKERS}",
            audit_spec="dist:16",
            fake_credentials_per_voter=1,
        )
        with VotegralElection(config) as election:
            report = election.run(rng=random.Random(11))
        assert report.universally_verified
        assert report.counts_match_intent
        assert election.audit_report.strategy == "dist"
        assert election.audit_report.ok


class TestFaultInjection:
    def test_tally_survives_one_worker_death_bit_identically(
        self, group, workload, boards
    ):
        authority, tagging, _, _, _ = workload
        board = boards["memory"]
        serial_result = _run_tally(
            group, authority, tagging, board, executor_from_spec("serial")
        )
        executor = executor_from_spec("cluster:2")
        try:
            executor.warm()
            threading.Timer(0.3, executor.worker_processes[0].kill).start()
            cluster_result = _run_tally(group, authority, tagging, board, executor)
            assert executor.coordinator.num_workers >= 1
        finally:
            executor.close()
        assert cluster_result == serial_result

    def test_audit_survives_one_worker_death_bit_identically(
        self, group, workload, boards
    ):
        authority, tagging, _, _, _ = workload
        board = boards["memory"]
        result = _run_tally(
            group, authority, tagging, board, executor_from_spec("serial")
        )
        reference = audit_tally(group, authority, board, result, verifier="batched")
        executor = executor_from_spec("cluster:2")
        try:
            executor.warm()
            threading.Timer(0.3, executor.worker_processes[1].kill).start()
            report = audit_tally(
                group, authority, board, result,
                verifier=DistributedVerifier(shard_size=4, executor=executor),
                executor=executor,
            )
        finally:
            executor.close()
        assert report.ok
        assert report.fingerprint() == reference.fingerprint()

    def test_losing_every_worker_is_a_clear_cluster_error(
        self, group, workload, boards
    ):
        authority, tagging, _, _, _ = workload
        executor = executor_from_spec("cluster:2")
        try:
            executor.warm()
            for process in executor.worker_processes:
                process.kill()
            for process in executor.worker_processes:
                process.wait(timeout=30)
            with pytest.raises(ClusterError, match="all cluster workers lost"):
                _run_tally(group, authority, tagging, boards["memory"], executor)
        finally:
            executor.close()
