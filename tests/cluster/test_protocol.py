"""Wire-protocol unit tests: framing, negotiation, the signed hello."""

from __future__ import annotations

import json
import os
import socket
import struct

import pytest

from repro.cluster.protocol import (
    HANDSHAKE_CODEC,
    MAGIC,
    PICKLE_CODEC,
    PROTOCOL_VERSION,
    Codec,
    ConnectionClosed,
    Frame,
    FrameKind,
    decode_secret,
    expect_frame,
    format_address,
    handshake_codec,
    hello_mac,
    parse_address,
    recv_frame,
    send_frame,
    verify_hello,
    verify_welcome,
    welcome_mac,
)
from repro.errors import ClusterError


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    @pytest.mark.parametrize("kind", list(FrameKind))
    def test_every_kind_round_trips(self, pair, kind):
        left, right = pair
        payload = {"kind": kind.name, "data": [1, 2, 3], "blob": b"\x00\xff" * 7}
        send_frame(left, Frame(kind, payload))
        frame = recv_frame(right)
        assert frame.kind is kind
        assert frame.payload == payload

    def test_frames_preserve_order(self, pair):
        left, right = pair
        for index in range(5):
            send_frame(left, Frame(FrameKind.TASK, (index, "map", None, [])))
        for index in range(5):
            assert recv_frame(right).payload[0] == index

    def test_bad_magic_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack("!4sBBI", b"HTTP", PROTOCOL_VERSION, 1, 0))
        with pytest.raises(ClusterError, match="magic"):
            recv_frame(right)

    def test_version_mismatch_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack("!4sBBI", MAGIC, PROTOCOL_VERSION + 1, 1, 0))
        with pytest.raises(ClusterError, match="protocol v"):
            recv_frame(right)

    def test_unknown_kind_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack("!4sBBI", MAGIC, PROTOCOL_VERSION, 200, 0))
        with pytest.raises(ClusterError, match="unknown frame kind"):
            recv_frame(right)

    def test_eof_mid_header_is_connection_closed(self, pair):
        left, right = pair
        left.sendall(MAGIC[:2])
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)

    def test_eof_mid_payload_is_connection_closed(self, pair):
        left, right = pair
        left.sendall(struct.pack("!4sBBI", MAGIC, PROTOCOL_VERSION, 1, 100) + b"partial")
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)

    def test_unencodable_payload_is_a_cluster_error(self, pair):
        left, _ = pair
        with pytest.raises(ClusterError, match="encode"):
            send_frame(left, Frame(FrameKind.TASK, lambda x: x))


class TestExpectFrame:
    def test_wrong_kind_rejected(self, pair):
        left, right = pair
        send_frame(left, Frame(FrameKind.HEARTBEAT))
        with pytest.raises(ClusterError, match="expected a TASK"):
            expect_frame(right, FrameKind.TASK)

    def test_error_frame_surfaces_peer_reason(self, pair):
        left, right = pair
        send_frame(left, Frame(FrameKind.ERROR, (None, "enrollment MAC verification failed")))
        with pytest.raises(ClusterError, match="MAC verification failed"):
            expect_frame(right, FrameKind.WELCOME)


class _JsonCodec(Codec):
    """A constrained-vocabulary codec exercising the pluggable seam."""

    name = "json"

    def encode(self, payload):
        return json.dumps(payload).encode()

    def decode(self, data):
        return json.loads(data.decode())


class TestCodecSeam:
    def test_alternate_codec_round_trips(self, pair):
        left, right = pair
        codec = _JsonCodec()
        send_frame(left, Frame(FrameKind.HELLO, {"worker_id": "w1", "slots": 2}), codec)
        frame = recv_frame(right, codec)
        assert frame.payload == {"worker_id": "w1", "slots": 2}

    def test_codec_mismatch_is_a_decode_error(self, pair):
        left, right = pair
        send_frame(left, Frame(FrameKind.HELLO, {"worker_id": "w1"}))  # pickle
        with pytest.raises(ClusterError, match="decode"):
            recv_frame(right, _JsonCodec())


class TestSignedHello:
    SECRET = b"s" * 32
    NONCE = b"n" * 16

    def test_accepts_honest_tag(self):
        tag = hello_mac(self.SECRET, self.NONCE, "worker-1", 4)
        assert verify_hello(self.SECRET, self.NONCE, "worker-1", 4, tag)

    @pytest.mark.parametrize(
        "secret,nonce,worker,slots",
        [
            (b"x" * 32, NONCE, "worker-1", 4),   # wrong secret
            (SECRET, b"m" * 16, "worker-1", 4),  # replayed against a new nonce
            (SECRET, NONCE, "worker-2", 4),      # renamed identity
            (SECRET, NONCE, "worker-1", 64),     # inflated slot count
        ],
    )
    def test_rejects_any_tampered_field(self, secret, nonce, worker, slots):
        tag = hello_mac(self.SECRET, self.NONCE, "worker-1", 4)
        assert not verify_hello(secret, nonce, worker, slots, tag)

    def test_rejects_garbage_tag(self):
        assert not verify_hello(self.SECRET, self.NONCE, "worker-1", 4, b"")
        assert not verify_hello(self.SECRET, self.NONCE, "worker-1", 4, b"\x00" * 32)


class TestHandshakeCodec:
    """Pre-authentication frames must never execute code on decode."""

    def test_primitive_payloads_round_trip(self, pair):
        left, right = pair
        payload = {"nonce": b"n" * 16, "protocol_version": 1, "authenticated": True}
        send_frame(left, Frame(FrameKind.CHALLENGE, payload))  # honest pickle encode
        assert recv_frame(right, HANDSHAKE_CODEC).payload == payload

    def test_global_bearing_pickle_rejected(self, pair):
        left, right = pair
        # os.system would resolve via find_class on an unrestricted decode.
        send_frame(left, Frame(FrameKind.HELLO, os.system))
        with pytest.raises(ClusterError, match="decode"):
            recv_frame(right, HANDSHAKE_CODEC)

    def test_reduce_payload_rejected_before_execution(self, pair):
        left, right = pair
        import cluster_tasks

        class Evil:
            def __reduce__(self):
                return (cluster_tasks.trip_wire, ("pwned",))

        cluster_tasks.TRIPWIRE.clear()
        send_frame(left, Frame(FrameKind.HELLO, {"mac": Evil()}))
        with pytest.raises(ClusterError, match="decode"):
            recv_frame(right, HANDSHAKE_CODEC)
        assert cluster_tasks.TRIPWIRE == []  # the payload never executed

    def test_pickle_sessions_harden_custom_codecs_do_not(self):
        assert handshake_codec(PICKLE_CODEC) is HANDSHAKE_CODEC
        other = _JsonCodec()
        assert handshake_codec(other) is other


class TestMutualWelcome:
    SECRET = b"s" * 32
    NONCE = b"w" * 16

    def test_accepts_honest_tag(self):
        tag = welcome_mac(self.SECRET, self.NONCE, "worker-1")
        assert verify_welcome(self.SECRET, self.NONCE, "worker-1", tag)

    @pytest.mark.parametrize(
        "secret,nonce,worker",
        [
            (b"x" * 32, NONCE, "worker-1"),  # impostor without the secret
            (SECRET, b"v" * 16, "worker-1"),  # replay against a fresh nonce
            (SECRET, NONCE, "worker-2"),      # reassigned identity
        ],
    )
    def test_rejects_tampered_fields(self, secret, nonce, worker):
        tag = welcome_mac(self.SECRET, self.NONCE, "worker-1")
        assert not verify_welcome(secret, nonce, worker, tag)


class TestAddressAndSecretParsing:
    def test_address_round_trip(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert format_address(("10.0.0.5", 51000)) == "10.0.0.5:51000"

    @pytest.mark.parametrize("text", ["localhost", ":80", "host:", "host:notaport", "host:99999"])
    def test_bad_addresses_rejected(self, text):
        with pytest.raises(ClusterError):
            parse_address(text)

    def test_secret_decoding(self):
        assert decode_secret(None) is None
        assert decode_secret("") is None
        assert decode_secret("00ff") == b"\x00\xff"
        # Non-hex secrets are taken literally so operators can use any string.
        assert decode_secret("hunter2!") == b"hunter2!"
