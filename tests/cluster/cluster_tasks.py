"""Module-level task functions shipped to cluster workers by the tests.

Worker daemons unpickle task functions by module path, so anything the
tests dispatch must live in a module the *worker subprocess* can import —
``tests/cluster/conftest.py`` prepends this directory to ``PYTHONPATH``
before any worker spawns.
"""

from __future__ import annotations

import os
import time

#: The CI stress job's geometry knobs, parsed once for the whole suite
#: (conftest.py and the test modules import these instead of re-reading
#: the environment with potentially divergent defaults).
CLUSTER_WORKERS = max(1, int(os.environ.get("REPRO_CLUSTER_WORKERS", "2")))
CLUSTER_PAGE_SIZE = max(1, int(os.environ.get("REPRO_CLUSTER_PAGE_SIZE", "3")))


def echo(value):
    return value


def square(value):
    return value * value


def add(left, right):
    return left + right


def slow_echo(value, delay=0.05):
    time.sleep(delay)
    return value


def boom(value):
    raise ValueError(f"boom on {value!r}")


class Unpicklable(Exception):
    """An exception whose payload cannot cross the wire."""

    def __init__(self):
        super().__init__("unpicklable")
        self.payload = lambda: None  # lambdas do not pickle


def boom_unpicklable(value):
    raise Unpicklable()


def worker_pid(_value=None):
    return os.getpid()


def page_total(records):
    """A 'call'-mode page reducer used by the feed tests."""
    return sum(records)


def stuck_once(marker_path, value):
    """Hang (only) the first worker that runs this; re-executions return fast.

    The marker file is the cross-process memory that makes a task-timeout
    reassignment observable: attempt one parks forever, attempt two — on
    another worker, after the reaper retires the stuck one — completes.
    """
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        time.sleep(600)
    return value


#: Evidence that a crafted pickle payload executed during decode (it must not).
TRIPWIRE = []


def trip_wire(marker):
    TRIPWIRE.append(marker)
    return marker
