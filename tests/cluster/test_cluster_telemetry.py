"""Fleet telemetry: worker spans piggyback onto one merged coordinator snapshot.

The cluster's observability contract (PR 6): when the coordinator process
has telemetry attached, the WELCOME frame asks workers to buffer spans in
memory, each RESULT frame carries the drained blob back, and the
coordinator's snapshot covers the whole fleet — per-worker ``cluster.task``
spans, dispatch/reassign counters, and (for a streaming tally) the tally
phase spans and queue-depth high-water marks — in one trace file an
operator can feed to ``python -m repro.telemetry summarize``.
"""

from __future__ import annotations

import os
import threading

import pytest

import cluster_tasks

from repro import telemetry
from repro.election import ElectionConfig, VotegralElection
from repro.runtime.executor import executor_from_spec
from repro.telemetry import TelemetrySnapshot
from repro.telemetry.__main__ import summarize

PHASES = {"tally.sig-check", "tally.mix", "tally.tag", "tally.join", "tally.decrypt"}


@pytest.fixture(autouse=True)
def clean_telemetry():
    yield
    telemetry.configure("off")
    os.environ.pop("REPRO_TELEMETRY", None)


def test_cluster_tally_produces_one_merged_snapshot(tmp_path):
    """The acceptance path: cluster:2 + stream + jsonl -> one fleet trace."""
    trace = tmp_path / "trace.jsonl"
    config = ElectionConfig(
        num_voters=4, num_mixers=2, proof_rounds=2,
        executor_spec="cluster:2", pipeline_spec="stream:2",
        telemetry_spec=f"jsonl:{trace}",
    )
    election = VotegralElection(config)
    try:
        outcome = election.run()
        assert outcome.counts_match_intent
    finally:
        election.executor.close()
        telemetry.configure("off")  # detach flushes coordinator aggregates

    snapshot = TelemetrySnapshot.from_jsonl(str(trace))
    # All five tally phases, traced through the streaming schedule.
    assert PHASES <= set(snapshot.span_names())
    # Per-worker task spans arrived piggybacked on RESULT frames and were
    # re-labelled by the coordinator on ingest: both workers are visible.
    task_workers = {span["attrs"].get("worker") for span in snapshot.spans_named("cluster.task")}
    assert task_workers == {"local-0", "local-1"}
    # Coordinator scheduling counters, including the zero-valued series a
    # healthy run pre-registers (reassign 0 is a statement, not an absence).
    assert snapshot.counter_total("cluster.enroll") == 2
    assert snapshot.counter_total("cluster.dispatch") > 0
    assert ("cluster.reassign", ()) in snapshot.counters
    assert snapshot.counter_total("cluster.reassign") == 0
    # The streaming pipeline's bounded queues reported their high-water mark.
    assert snapshot.gauge_high_water("pipeline.queue.depth") >= 1
    # And the operator-facing summary renders the whole fleet.
    report = summarize(str(trace))
    assert "cluster.task" in report
    assert "repro_cluster_dispatch_total" in report


def test_worker_task_spans_parent_under_the_dispatch_span():
    """Distributed trace continuity: TASK frames carry the dispatching call's
    traceparent, so every worker-side ``cluster.task`` span — piggybacked back
    on RESULT frames — parents under the coordinator's ``executor.map`` span
    in one trace, not in per-worker orphan traces."""
    telemetry.configure("mem", propagate=False)
    executor = executor_from_spec("cluster:2")
    try:
        executor.warm()
        results = executor.map(cluster_tasks.square, list(range(12)))
        assert results == [value * value for value in range(12)]

        snapshot = telemetry.snapshot()
        (dispatch,) = snapshot.spans_named("executor.map")
        tasks = snapshot.spans_named("cluster.task")
        assert len(tasks) >= 2
        for task in tasks:
            assert task["trace_id"] == dispatch["trace_id"]
            assert task["parent_id"] == dispatch["span_id"]
        # Both workers contributed to the same trace.
        assert {span["attrs"].get("worker") for span in tasks} == {"local-0", "local-1"}
        # And the snapshot's per-trace grouping sees one end-to-end trace.
        chain = snapshot.trace_spans(dispatch["trace_id"])
        assert len(chain) == 1 + len(tasks)
    finally:
        executor.close()


def test_worker_kill_mid_shard_keeps_survivor_spans_in_snapshot():
    """Kill one worker mid-shard: the group completes on the survivor, the
    reassignment is counted, and the survivor's spans still merge."""
    telemetry.configure("mem", propagate=False)
    executor = executor_from_spec("cluster:2")
    try:
        executor.warm()
        victim = executor.worker_processes[0]
        threading.Timer(0.25, victim.kill).start()
        results = executor.starmap(cluster_tasks.slow_echo, [(i, 0.05) for i in range(40)])
        assert results == list(range(40))

        snapshot = telemetry.snapshot()
        # The victim's death was observed and its in-flight shards moved.
        assert snapshot.counter_total("cluster.worker.lost") >= 1
        assert snapshot.counter_total("cluster.reassign") >= 1
        # The survivor's task spans kept arriving after the kill.
        task_workers = {span["attrs"].get("worker") for span in snapshot.spans_named("cluster.task")}
        assert "local-1" in task_workers
        served = len(snapshot.spans_named("cluster.task"))
        assert served >= 8  # the fan-out produced 8 chunks; all were traced
    finally:
        executor.close()
