"""Coordinator and RemoteExecutor behaviour over real worker subprocesses:
ordering, exception transparency, enrollment auth, reassignment, loss."""

from __future__ import annotations

import socket
import threading
import time

import pytest

import cluster_tasks
from cluster_tasks import CLUSTER_WORKERS

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.executor import RemoteExecutor, remote_executor_from_spec
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    Frame,
    FrameKind,
    expect_frame,
    hello_mac,
    send_frame,
)
from repro.cluster.worker import WorkerDaemon, main as worker_main
from repro.errors import ClusterError
from repro.runtime.executor import SerialExecutor, executor_from_spec
from repro.runtime.pipeline import MapStage, StreamPipeline, iter_shards


class TestExecutorContract:
    def test_map_preserves_order(self, cluster_executor):
        items = list(range(97))
        assert cluster_executor.map(cluster_tasks.square, items) == [i * i for i in items]

    def test_starmap_preserves_order(self, cluster_executor):
        items = [(i, 2 * i) for i in range(41)]
        assert cluster_executor.starmap(cluster_tasks.add, items) == [a + b for a, b in items]

    def test_empty_input(self, cluster_executor):
        assert cluster_executor.map(cluster_tasks.echo, []) == []
        assert cluster_executor.starmap(cluster_tasks.add, []) == []

    def test_single_item_still_goes_remote(self, cluster_executor):
        # The local pid must never appear: even one item ships to a worker.
        import os

        pids = cluster_executor.map(cluster_tasks.worker_pid, [None])
        assert pids and pids[0] != os.getpid()

    def test_explicit_chunksize_respected(self, cluster_executor):
        items = list(range(10))
        assert cluster_executor.map(cluster_tasks.square, items, chunksize=3) == [
            i * i for i in items
        ]

    def test_work_spreads_across_workers(self, cluster_executor):
        if CLUSTER_WORKERS < 2:
            pytest.skip("needs at least two workers")
        pids = set(
            cluster_executor.map(
                cluster_tasks.worker_pid, [None] * 64, chunksize=1
            )
        )
        assert len(pids) >= 2

    def test_worker_exception_propagates_unchanged(self, cluster_executor):
        with pytest.raises(ValueError, match="boom on 3"):
            cluster_executor.map(cluster_tasks.boom, [3])
        # The cluster stays serviceable after an application error.
        assert cluster_executor.map(cluster_tasks.echo, [1, 2]) == [1, 2]

    def test_unpicklable_worker_exception_degrades_to_cluster_error(self, cluster_executor):
        with pytest.raises(ClusterError, match="Unpicklable"):
            cluster_executor.map(cluster_tasks.boom_unpicklable, [1])
        assert cluster_executor.map(cluster_tasks.echo, [7]) == [7]

    def test_submit_calls_acks_in_any_order(self, cluster_executor):
        acked = []
        results = cluster_executor.submit_calls(
            cluster_tasks.page_total,
            [([1, 2],), ([3],), ([4, 5, 6],)],
            on_result=lambda index, value: acked.append((index, value)),
        )
        assert results == [3, 3, 15]
        assert sorted(acked) == [(0, 3), (1, 3), (2, 15)]

    def test_raising_on_result_fails_the_call_not_the_worker(self, cluster_executor):
        def bad_callback(index, value):
            raise RuntimeError("ack checkpoint failed")

        with pytest.raises(RuntimeError, match="ack checkpoint failed"):
            cluster_executor.submit_calls(
                cluster_tasks.echo, [(1,), (2,)], on_result=bad_callback
            )
        # A caller-side callback bug must not cost a healthy connection.
        assert cluster_executor.coordinator.num_workers == CLUSTER_WORKERS
        assert cluster_executor.map(cluster_tasks.echo, [5]) == [5]

    def test_concurrent_task_groups_multiplex(self, cluster_executor):
        """Several threads sharing one executor — the pipeline-stage shape."""
        outcomes = {}

        def run(name, offset):
            outcomes[name] = cluster_executor.map(
                cluster_tasks.square, range(offset, offset + 20)
            )

        threads = [
            threading.Thread(target=run, args=(f"t{i}", 10 * i)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for i in range(4):
            assert outcomes[f"t{i}"] == [x * x for x in range(10 * i, 10 * i + 20)]

    def test_stream_pipeline_stage_runs_on_remote_executor(self, cluster_executor):
        shards = StreamPipeline(
            [MapStage(cluster_tasks.square, executor=cluster_executor)], name="remote-map"
        ).run(iter_shards(list(range(30)), 7))
        flat = [item for shard in shards for item in shard.items]
        assert flat == [i * i for i in range(30)]


class TestEnrollment:
    def test_handshake_rejects_wrong_secret(self, cluster_executor):
        coordinator = cluster_executor.coordinator
        with socket.create_connection(coordinator.address, timeout=10) as sock:
            challenge = expect_frame(sock, FrameKind.CHALLENGE).payload
            assert challenge["authenticated"] is True
            tag = hello_mac(b"not-the-secret", challenge["nonce"], "intruder", 1)
            send_frame(sock, Frame(FrameKind.HELLO, {
                "protocol_version": PROTOCOL_VERSION,
                "worker_id": "intruder",
                "slots": 1,
                "mac": tag,
            }))
            with pytest.raises(ClusterError, match="MAC verification failed"):
                expect_frame(sock, FrameKind.WELCOME)
        assert "intruder" not in cluster_executor.coordinator.worker_ids()

    def test_handshake_rejects_version_mismatch(self, cluster_executor):
        coordinator = cluster_executor.coordinator
        with socket.create_connection(coordinator.address, timeout=10) as sock:
            expect_frame(sock, FrameKind.CHALLENGE)
            send_frame(sock, Frame(FrameKind.HELLO, {
                "protocol_version": PROTOCOL_VERSION + 7,
                "worker_id": "time-traveller",
                "slots": 1,
            }))
            with pytest.raises(ClusterError, match="version mismatch"):
                expect_frame(sock, FrameKind.WELCOME)

    def test_in_thread_worker_enrolls_serves_and_drains_on_shutdown(self):
        secret = b"k" * 32
        coordinator = ClusterCoordinator(secret=secret)
        executor = RemoteExecutor(coordinator=coordinator, secret=secret)
        daemon = WorkerDaemon(
            address=coordinator.address, secret=secret,
            executor=SerialExecutor(), worker_id="thread-worker",
        )
        status = {}
        thread = threading.Thread(target=lambda: status.update(code=daemon.run()))
        thread.start()
        try:
            coordinator.wait_for_workers(1, timeout=30)
            assert coordinator.worker_ids() == ["thread-worker"]
            assert executor.map(cluster_tasks.square, [5, 6]) == [25, 36]
            assert daemon.tasks_served >= 1
        finally:
            executor.close()
            thread.join(timeout=30)
        assert status.get("code") == 0  # SHUTDOWN drained the worker cleanly

    def test_duplicate_worker_identity_is_renamed(self):
        secret = b"k" * 32
        coordinator = ClusterCoordinator(secret=secret)
        daemons = [
            WorkerDaemon(
                address=coordinator.address, secret=secret,
                executor=SerialExecutor(), worker_id="same-name",
            )
            for _ in range(2)
        ]
        threads = [threading.Thread(target=daemon.run, daemon=True) for daemon in daemons]
        try:
            for thread in threads:
                thread.start()
            coordinator.wait_for_workers(2, timeout=30)
            names = coordinator.worker_ids()
            assert len(names) == 2 and len(set(names)) == 2
            assert any(name == "same-name" for name in names)
        finally:
            coordinator.shutdown()
            for thread in threads:
                thread.join(timeout=30)


class TestFaultTolerance:
    def test_duplicate_results_are_idempotent(self):
        """First RESULT per task key wins; redeliveries are dropped."""
        coordinator = ClusterCoordinator()
        try:
            outcome = {}
            thread = threading.Thread(
                target=lambda: outcome.update(
                    r=coordinator.run_tasks([("call", cluster_tasks.echo, (1,))])
                )
            )
            thread.start()
            deadline = time.monotonic() + 10
            while not coordinator._tasks and time.monotonic() < deadline:
                time.sleep(0.01)
            (key,) = list(coordinator._tasks)
            coordinator._complete(key, "first")
            coordinator._complete(key, "late-redelivery")
            thread.join(timeout=10)
            assert outcome["r"] == ["first"]
        finally:
            coordinator.shutdown()

    def test_killing_a_worker_mid_shard_reassigns(self):
        executor = executor_from_spec("cluster:2")
        try:
            executor.warm()
            victim = executor.worker_processes[0]
            threading.Timer(0.25, victim.kill).start()
            results = executor.starmap(
                cluster_tasks.slow_echo, [(i, 0.05) for i in range(40)]
            )
            assert results == list(range(40))
            assert executor.coordinator.num_workers == 1
            # And the survivor keeps serving subsequent groups.
            assert executor.map(cluster_tasks.square, [9]) == [81]
        finally:
            executor.close()

    def test_all_workers_lost_raises_cluster_error(self):
        executor = executor_from_spec("cluster:2")
        try:
            executor.warm()
            for process in executor.worker_processes:
                threading.Timer(0.25, process.kill).start()
            with pytest.raises(ClusterError, match="all cluster workers lost"):
                executor.starmap(
                    cluster_tasks.slow_echo, [(i, 0.05) for i in range(500)]
                )
            # Dispatch on a fully dead cluster stays a clear error, not a hang
            # (reap the corpses first so the degraded-mode check sees them).
            for process in executor.worker_processes:
                process.wait(timeout=30)
            with pytest.raises(ClusterError, match="all cluster workers lost"):
                executor.map(cluster_tasks.echo, [1])
        finally:
            executor.close()

    def test_task_timeout_reassigns_a_stuck_shard(self, tmp_path):
        """A deadlocked work function heartbeats happily; only the task
        timeout can retire its worker and move the shard elsewhere."""
        import secrets as secrets_module

        from repro.cluster.executor import RemoteExecutor

        executor = RemoteExecutor(
            secret=secrets_module.token_bytes(32),
            spawn_workers=2,
            task_timeout=1.5,
        )
        try:
            executor.warm()
            marker = str(tmp_path / "stuck.marker")
            assert executor.submit_calls(cluster_tasks.stuck_once, [(marker, 42)]) == [42]
            assert executor.coordinator.num_workers == 1  # the stuck one was retired
        finally:
            executor.close()

    def test_shutdown_fails_outstanding_groups(self):
        coordinator = ClusterCoordinator()
        outcome = {}

        def run():
            try:
                coordinator.run_tasks([("call", cluster_tasks.echo, (1,))])
            except ClusterError as exc:
                outcome["error"] = str(exc)

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.1)
        coordinator.shutdown()
        thread.join(timeout=10)
        assert "error" in outcome


class TestSpecParsing:
    @pytest.mark.parametrize("spec", ["cluster", "cluster:0", "cluster:x", "remote", "remote:hostonly"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            executor_from_spec(spec)

    def test_unknown_backend_error_names_remote_backends(self):
        with pytest.raises(ValueError, match="cluster"):
            executor_from_spec("mainframe:4")

    def test_remote_spec_parses_multiple_listen_addresses(self):
        executor = remote_executor_from_spec("remote:127.0.0.1:0,127.0.0.1:0")
        try:
            assert len(executor.coordinator.addresses) == 2
            assert all(port != 0 for _, port in executor.coordinator.addresses)
        finally:
            executor.close()

    def test_worker_cli_rejects_recursive_executor_specs(self, capsys):
        with pytest.raises(SystemExit):
            worker_main(["--connect", "127.0.0.1:1", "--executor", "cluster:2"])
        assert "worker-local executors" in capsys.readouterr().err
