"""Shared fixtures and env knobs for the cluster test suite.

The CI stress job randomizes ``REPRO_CLUSTER_WORKERS`` (how many loopback
worker subprocesses the shared cluster spawns) and
``REPRO_CLUSTER_PAGE_SIZE`` (the ledger cursor page size the tally tests
read with), mirroring the pipeline stress pattern — schedule-dependent
bugs in dispatch, reassignment and cursor acking rarely show on one lucky
geometry.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime.executor import executor_from_spec

# Worker subprocesses unpickle test task functions by module path; make the
# cluster_tasks helper importable from every spawned worker's PYTHONPATH.
_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
    os.environ["PYTHONPATH"] = os.pathsep.join(
        part for part in (os.environ.get("PYTHONPATH"), _HERE) if part
    )

from cluster_tasks import CLUSTER_WORKERS  # noqa: E402 - needs the path above


@pytest.fixture(scope="module")
def cluster_executor():
    """One warmed loopback cluster shared by a test module (spawn is ~1s)."""
    executor = executor_from_spec(f"cluster:{CLUSTER_WORKERS}")
    executor.warm()
    yield executor
    executor.close()
