"""Latency ledger, hardware profiles, printer and scanner models."""

import pytest

from repro.peripherals.clock import Component, LatencyLedger
from repro.peripherals.hardware import HARDWARE_PROFILES, hardware_profile
from repro.peripherals.printer import ReceiptPrinter
from repro.peripherals.qr import Barcode, QRCode
from repro.peripherals.scanner import CodeScanner


class TestLatencyLedger:
    def test_phase_scoping(self):
        ledger = LatencyLedger()
        with ledger.phase("CheckIn"):
            ledger.record(Component.CRYPTO, 0.1)
        ledger.record(Component.CRYPTO, 0.2)
        table = ledger.wall_by_phase_component()
        assert table["CheckIn"][Component.CRYPTO] == pytest.approx(0.1)
        assert table["Unscoped"][Component.CRYPTO] == pytest.approx(0.2)

    def test_nested_phases_restore(self):
        ledger = LatencyLedger()
        with ledger.phase("Outer"):
            with ledger.phase("Inner"):
                ledger.record(Component.QR_SCAN, 0.5)
            ledger.record(Component.QR_SCAN, 0.25)
        assert ledger.phase_wall_seconds("Inner") == pytest.approx(0.5)
        assert ledger.phase_wall_seconds("Outer") == pytest.approx(0.25)

    def test_totals(self):
        ledger = LatencyLedger()
        ledger.record(Component.QR_PRINT, 1.0, cpu_user_seconds=0.3, cpu_system_seconds=0.1)
        ledger.record(Component.QR_SCAN, 0.5, cpu_user_seconds=0.05)
        assert ledger.total_wall_seconds() == pytest.approx(1.5)
        assert ledger.total_cpu_seconds() == pytest.approx(0.45)
        assert ledger.wall_seconds_for(Component.QR_PRINT) == pytest.approx(1.0)

    def test_measure_records_real_time(self):
        ledger = LatencyLedger()
        with ledger.measure(Component.CRYPTO, label="spin"):
            sum(range(10000))
        assert ledger.total_wall_seconds() > 0

    def test_merge(self):
        a, b = LatencyLedger(), LatencyLedger()
        a.record(Component.CRYPTO, 1.0)
        b.record(Component.QR_SCAN, 2.0)
        a.merge(b)
        assert a.total_wall_seconds() == pytest.approx(3.0)

    def test_phases_listed_in_first_seen_order(self):
        ledger = LatencyLedger()
        with ledger.phase("B"):
            ledger.record(Component.CRYPTO, 0.1)
        with ledger.phase("A"):
            ledger.record(Component.CRYPTO, 0.1)
        assert ledger.phases() == ["B", "A"]


class TestHardwareProfiles:
    def test_all_four_platforms_exist(self):
        assert set(HARDWARE_PROFILES) == {"L1", "L2", "H1", "H2"}

    def test_lookup_by_key(self):
        assert hardware_profile("L1").name == "Point-of-Sale Kiosk"
        with pytest.raises(KeyError):
            hardware_profile("X9")

    def test_constrained_devices_flagged(self):
        assert hardware_profile("L1").resource_constrained
        assert hardware_profile("L2").resource_constrained
        assert not hardware_profile("H1").resource_constrained

    def test_constrained_devices_have_higher_cpu_multiplier(self):
        assert hardware_profile("L1").cpu_multiplier > hardware_profile("H1").cpu_multiplier

    def test_print_render_slower_on_kiosk(self):
        """§7.2: print rendering is ≈380 % slower on the constrained devices."""
        ratio = hardware_profile("L1").print_cpu_seconds(10) / hardware_profile("H1").print_cpu_seconds(10)
        assert ratio > 3.5

    def test_scan_latency_close_to_a_second_for_typical_qr(self):
        """§7.2: scanning a QR takes ≈948 ms on average."""
        seconds = hardware_profile("H1").scan_seconds(400)
        assert 0.6 < seconds < 1.3


class TestPrinterScanner:
    def test_printer_records_print_component(self):
        ledger = LatencyLedger()
        printer = ReceiptPrinter(profile=hardware_profile("H1"), ledger=ledger)
        printer.print_codes(QRCode(payload=b"x" * 100), label="commit")
        assert ledger.wall_seconds_for(Component.QR_PRINT) > 0
        assert printer.total_jobs == 1

    def test_bigger_jobs_take_longer(self):
        ledger = LatencyLedger()
        printer = ReceiptPrinter(profile=hardware_profile("H1"), ledger=ledger)
        small = printer.print_codes(QRCode(payload=b"x" * 20))
        large = printer.print_codes(QRCode(payload=b"x" * 300), QRCode(payload=b"y" * 300))
        assert large.total_lines > small.total_lines

    def test_scanner_roundtrip_and_accounting(self):
        ledger = LatencyLedger()
        scanner = CodeScanner(profile=hardware_profile("H1"), ledger=ledger)
        decoded = scanner.scan(QRCode(payload=b"payload"))
        assert decoded.payload == b"payload"
        assert ledger.wall_seconds_for(Component.QR_SCAN) > 0
        assert ledger.wall_seconds_for(Component.QR_READ_WRITE) >= 0
        assert scanner.total_scans == 1

    def test_scanner_handles_barcodes(self):
        ledger = LatencyLedger()
        scanner = CodeScanner(profile=hardware_profile("L2"), ledger=ledger)
        decoded = scanner.scan(Barcode(payload=b"ticket"))
        assert decoded.payload == b"ticket"
