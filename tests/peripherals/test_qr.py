"""QR/barcode payload model."""

import pytest

from repro.errors import ProtocolError
from repro.peripherals.qr import Barcode, QRCode, qr_version_for


class TestQRCode:
    def test_roundtrip(self):
        code = QRCode(payload=b"hello trip", label="test")
        decoded = QRCode.decode(code.encoded)
        assert decoded.payload == b"hello trip"

    def test_version_grows_with_payload(self):
        assert qr_version_for(10) < qr_version_for(200)

    def test_paper_payload_sizes_fit(self):
        """The paper's QR payloads are 13-356 bytes; all must be encodable."""
        for size in (13, 100, 256, 356):
            assert 1 <= qr_version_for(size) <= 16

    def test_oversized_payload_rejected(self):
        with pytest.raises(ProtocolError):
            qr_version_for(5000)

    def test_corrupted_wire_bytes_detected(self):
        code = QRCode(payload=b"hello")
        corrupted = bytearray(code.encoded)
        corrupted[5] ^= 0xFF
        with pytest.raises(Exception):
            QRCode.decode(bytes(corrupted))

    def test_wire_length_larger_than_payload(self):
        code = QRCode(payload=b"x" * 50)
        assert code.wire_length > 50


class TestBarcode:
    def test_roundtrip(self):
        code = Barcode(payload=b"alice|tag")
        assert Barcode.decode(code.encoded).payload == b"alice|tag"

    def test_capacity_limit(self):
        with pytest.raises(ProtocolError):
            Barcode(payload=b"x" * 100)

    def test_checksum_detects_tampering(self):
        code = Barcode(payload=b"alice")
        corrupted = bytearray(code.encoded)
        corrupted[-1] ^= 0x01
        with pytest.raises(Exception):
            Barcode.decode(bytes(corrupted))
