"""Shared fixtures for the test suite.

All protocol tests run over the small (insecure, clearly-labelled) testing
group so the full suite stays fast; a handful of tests exercise the Ed25519
and 2048-bit backends directly to validate the real parameter sets.
"""

from __future__ import annotations

import pytest

from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamal
from repro.crypto.modp_group import testing_group
from repro.ledger.bulletin_board import BulletinBoard
from repro.registration.setup import ElectionSetup


@pytest.fixture(scope="session")
def group():
    """The fast testing group shared by the whole suite."""
    return testing_group()


@pytest.fixture(scope="session")
def elgamal(group):
    return ElGamal(group)


@pytest.fixture()
def dkg(group):
    """A fresh 3-member authority DKG."""
    return DistributedKeyGeneration.run(group, 3)


@pytest.fixture()
def board():
    return BulletinBoard()


@pytest.fixture()
def small_setup(group):
    """An election setup with three eligible voters."""
    return ElectionSetup.run(
        group,
        ["alice", "bob", "carol"],
        num_authority_members=3,
        envelopes_per_voter=4,
    )
