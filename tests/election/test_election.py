"""The full Votegral election pipeline."""

import random

import pytest

from repro.election import ElectionConfig, VotegralElection
from repro.errors import ProtocolError
from repro.ledger import BatchedBoard, MemoryBackend, SQLiteBackend


class TestElectionConfig:
    def test_voter_ids_are_unique_and_sized(self):
        config = ElectionConfig(num_voters=12)
        ids = config.voter_ids()
        assert len(ids) == 12
        assert len(set(ids)) == 12

    def test_group_factory(self):
        config = ElectionConfig()
        assert config.make_group().order > 2


class TestFullElection:
    def test_tally_matches_intent(self):
        config = ElectionConfig(num_voters=5, num_options=3, proof_rounds=2, num_mixers=2)
        report = VotegralElection(config).run()
        assert report.counts_match_intent
        assert report.universally_verified
        assert report.result.num_counted == 5

    def test_fake_ballots_inflate_ledger_not_tally(self):
        config = ElectionConfig(num_voters=4, num_options=2, proof_rounds=2, num_mixers=2)
        election = VotegralElection(config)
        election.run_setup()
        election.run_registration()
        election.run_voting(fake_vote_probability=1.0)
        result = election.run_tally()
        assert result.num_ballots_on_ledger == 8
        assert result.num_counted == 4

    def test_explicit_choices(self):
        config = ElectionConfig(num_voters=3, num_options=2, proof_rounds=2, num_mixers=2)
        election = VotegralElection(config)
        choices = {voter_id: 1 for voter_id in config.voter_ids()}
        report = election.run(choices=choices)
        assert report.result.counts == {0: 0, 1: 3}

    def test_tally_before_voting_raises(self):
        election = VotegralElection(ElectionConfig(num_voters=2))
        election.run_setup()
        with pytest.raises(ProtocolError):
            election.run_tally()

    def test_phase_timings_recorded(self):
        config = ElectionConfig(num_voters=3, proof_rounds=2, num_mixers=2)
        election = VotegralElection(config)
        election.run()
        per_voter = election.timing.per_voter(config.num_voters)
        assert per_voter["registration"] > 0
        assert per_voter["voting"] > 0
        assert per_voter["tally"] > 0

    def test_every_voter_gets_a_client_with_real_credential(self):
        config = ElectionConfig(num_voters=3, proof_rounds=2, num_mixers=2)
        election = VotegralElection(config)
        election.run_setup()
        election.run_registration()
        for client in election.clients.values():
            assert client.real_credential().is_real

    def test_phase_outputs_initialized_before_any_phase_runs(self):
        # Out-of-order drivers must see empty defaults, not AttributeError.
        election = VotegralElection(ElectionConfig(num_voters=2))
        assert election._intended == {}
        assert election._verified is False

    def test_injected_rng_makes_voting_reproducible(self):
        def run_with_seed(seed):
            config = ElectionConfig(num_voters=4, num_options=3, proof_rounds=2, num_mixers=2)
            election = VotegralElection(config)
            election.run_setup()
            election.run_registration()
            return election.run_voting(rng=random.Random(seed))

        assert run_with_seed(99) == run_with_seed(99)


class TestBoardSpecs:
    @pytest.mark.parametrize(
        "spec, backend_type",
        [("memory", MemoryBackend), ("sqlite", SQLiteBackend), ("batched:16", BatchedBoard)],
    )
    def test_config_selects_board_backend(self, spec, backend_type):
        config = ElectionConfig(num_voters=2, board_spec=spec)
        backend = config.make_board_backend()
        assert isinstance(backend, backend_type)

    def test_batched_board_election_matches_intent(self):
        config = ElectionConfig(
            num_voters=3, num_options=2, proof_rounds=2, num_mixers=2, board_spec="batched:4"
        )
        choices = {voter: 1 for voter in config.voter_ids()}
        with VotegralElection(config) as election:
            report = election.run(choices=choices)
        assert report.result.counts == {0: 0, 1: 3}
        assert report.universally_verified
        assert report.config.board_spec == "batched:4"
