"""Tests for the Straus/Pippenger multi-exponentiation kernels and their
integration behind :meth:`Group.multi_exponentiate`.

The kernels are exercised twice over: directly, on a toy additive group
where ``∏ b_i^{e_i}`` is just ``Σ e_i·b_i mod m`` (so every window width and
both algorithms can be checked exhaustively and fast), and through the real
group backends where the planner picks the algorithm.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.ed25519 import ed25519_group
from repro.crypto.modp_group import modp_group_256, testing_group
from repro.crypto.multiexp import (
    GroupOps,
    MAX_WINDOW_BITS,
    _signed_digits,
    collapse_terms,
    pippenger_multi_exponentiate,
    plan_multi_exponentiation,
    straus_multi_exponentiate,
)

FAST = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
SLOW_GROUP = settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])

# A toy *additive* group: values are integers mod M, "multiplication" is
# addition, "exponentiation" is scalar multiplication.  The kernels never
# assume anything beyond the GroupOps contract, so correctness here implies
# the windowing/bucket logic is right; the backend tests below then only
# need to pin the wiring.
_M = 1_000_003
ADDITIVE = GroupOps(
    identity=0,
    multiply=lambda a, b: (a + b) % _M,
    advance=lambda a, k: (a << k) % _M,
    invert=lambda a: (-a) % _M,
)
ADDITIVE_NO_INVERT = GroupOps(
    identity=0,
    multiply=lambda a, b: (a + b) % _M,
    advance=lambda a, k: (a << k) % _M,
)


def _additive_expected(values, scalars):
    return sum(value * scalar for value, scalar in zip(values, scalars)) % _M


class TestKernels:
    @FAST
    @given(
        terms=st.lists(
            st.tuples(st.integers(0, _M - 1), st.integers(0, 2**64)), min_size=0, max_size=12
        ),
        window=st.integers(1, 8),
    )
    def test_straus_matches_direct_sum(self, terms, window):
        values = [value for value, _ in terms]
        scalars = [scalar for _, scalar in terms]
        result = straus_multi_exponentiate(ADDITIVE, values, scalars, window)
        assert result == _additive_expected(values, scalars)

    @FAST
    @given(
        terms=st.lists(
            st.tuples(st.integers(0, _M - 1), st.integers(0, 2**64)), min_size=0, max_size=12
        ),
        window=st.integers(1, 8),
        signed=st.booleans(),
    )
    def test_pippenger_matches_direct_sum(self, terms, window, signed):
        values = [value for value, _ in terms]
        scalars = [scalar for _, scalar in terms]
        ops = ADDITIVE if signed else ADDITIVE_NO_INVERT
        result = pippenger_multi_exponentiate(ops, values, scalars, window)
        assert result == _additive_expected(values, scalars)

    def test_kernels_reject_zero_window(self):
        with pytest.raises(ValueError):
            straus_multi_exponentiate(ADDITIVE, [1], [1], 0)
        with pytest.raises(ValueError):
            pippenger_multi_exponentiate(ADDITIVE, [1], [1], 0)

    def test_unsigned_pippenger_at_window_one(self):
        # window=1 cannot use signed digits (the carry never terminates on
        # odd scalars); the kernel must silently fall back to unsigned even
        # though an invert hook is available.
        result = pippenger_multi_exponentiate(ADDITIVE, [3, 5], [7, 9], 1)
        assert result == (3 * 7 + 5 * 9) % _M


class TestSignedDigits:
    @FAST
    @given(scalar=st.integers(0, 2**256), window=st.integers(2, 10))
    def test_reconstructs_scalar_within_bounds(self, scalar, window):
        digits = _signed_digits(scalar, window)
        half = 1 << (window - 1)
        assert all(-half <= digit < half for digit in digits)
        assert sum(digit << (index * window) for index, digit in enumerate(digits)) == scalar

    def test_window_one_rejected(self):
        with pytest.raises(ValueError):
            _signed_digits(3, 1)


class TestPlanner:
    def test_degenerate_inputs_stay_naive(self):
        assert plan_multi_exponentiation(0, 256).algorithm == "naive"
        assert plan_multi_exponentiation(4, 0).algorithm == "naive"

    def test_single_term_with_native_pow_stays_naive(self):
        # With a cheap native exponentiation (mod-p backends) one term can't
        # be beaten from Python.  (With the generic 1.5·bits ladder cost a
        # single-term Straus — i.e. plain sliding-window — *is* cheaper, so
        # no naive assertion is made there.)
        plan = plan_multi_exponentiation(1, 2048, exponentiate_cost=0.87 * 2048)
        assert plan.algorithm == "naive"

    def test_medium_batch_prefers_straus(self):
        plan = plan_multi_exponentiation(64, 2048)
        assert plan.algorithm == "straus"
        assert 1 <= plan.window <= MAX_WINDOW_BITS

    def test_huge_batch_prefers_pippenger(self):
        # Past the Straus table-memory guard only Pippenger remains viable.
        plan = plan_multi_exponentiation(5000, 2048)
        assert plan.algorithm == "pippenger"

    def test_estimate_beats_naive_when_switching(self):
        naive_cost = 64 * 1.5 * 2048
        plan = plan_multi_exponentiation(64, 2048)
        assert plan.estimated_operations < naive_cost


class TestCollapseTerms:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            collapse_terms(97, [1, 2], [3], key=lambda b: b)

    def test_merges_duplicates_and_drops_zeros(self):
        terms = collapse_terms(97, [5, 5, 7, 9], [40, 60, 0, 97], key=lambda b: b)
        assert terms == [(5, 3)]  # 40+60 = 100 ≡ 3 (mod 97); 0 and 97≡0 drop

    def test_negative_scalars_reduce_into_range(self):
        terms = collapse_terms(97, [5], [-1], key=lambda b: b)
        assert terms == [(5, 96)]


@pytest.fixture(params=["toy", "modp256", "ed25519"])
def any_group(request):
    return {
        "toy": testing_group,
        "modp256": modp_group_256,
        "ed25519": ed25519_group,
    }[request.param]()


class TestGroupMultiExponentiate:
    """The ISSUE's edge-case checklist, across every backend."""

    def test_empty_terms_yield_identity(self, any_group):
        assert any_group.multi_exponentiate([], []) == any_group.identity

    def test_single_term(self, any_group):
        base = any_group.power(12345)
        assert any_group.multi_exponentiate([base], [7]) == base.exponentiate(7)

    def test_duplicate_bases_merge(self, any_group):
        base = any_group.power(42)
        other = any_group.power(99)
        expected = base.exponentiate(10).operate(other.exponentiate(5))
        assert any_group.multi_exponentiate([base, other, base], [3, 5, 7]) == expected

    def test_zero_scalars_vanish(self, any_group):
        base = any_group.power(42)
        assert any_group.multi_exponentiate([base, base], [0, 0]) == any_group.identity

    def test_negative_scalar_is_inverse(self, any_group):
        base = any_group.power(42)
        assert any_group.multi_exponentiate([base], [-3]) == base.exponentiate(3).inverse()

    def test_scalar_at_or_above_order_reduces(self, any_group):
        order = any_group.order
        base = any_group.power(42)
        assert any_group.multi_exponentiate([base], [order]) == any_group.identity
        assert any_group.multi_exponentiate([base], [order + 5]) == base.exponentiate(5)

    def test_mismatched_lengths_raise(self, any_group):
        base = any_group.power(42)
        with pytest.raises(ValueError):
            any_group.multi_exponentiate([base], [1, 2])


def _naive_fold(group, bases, scalars):
    result = group.identity
    for base, scalar in zip(bases, scalars):
        result = result.operate(base.exponentiate(scalar))
    return result


class TestNaiveEquivalenceProperty:
    """Hypothesis property: multi_exponentiate == the naive per-term fold."""

    @FAST
    @given(
        terms=st.lists(
            st.tuples(st.integers(1, 2**61), st.integers(-(2**62), 2**62)),
            min_size=0,
            max_size=10,
        )
    )
    def test_modp_matches_naive_fold(self, terms):
        group = testing_group()
        bases = [group.power(seed) for seed, _ in terms]
        scalars = [scalar for _, scalar in terms]
        assert group.multi_exponentiate(bases, scalars) == _naive_fold(group, bases, scalars)

    @SLOW_GROUP
    @given(
        terms=st.lists(
            st.tuples(st.integers(1, 2**252), st.integers(-(2**253), 2**253)),
            min_size=0,
            max_size=4,
        )
    )
    def test_ed25519_matches_naive_fold(self, terms):
        group = ed25519_group()
        bases = [group.power(seed) for seed, _ in terms]
        scalars = [scalar for _, scalar in terms]
        assert group.multi_exponentiate(bases, scalars) == _naive_fold(group, bases, scalars)

    @SLOW_GROUP
    @given(
        terms=st.lists(
            st.tuples(st.integers(1, 2**254), st.integers(-(2**255), 2**255)),
            min_size=0,
            max_size=6,
        )
    )
    def test_modp256_matches_naive_fold(self, terms):
        # Large enough (255-bit order) to take the real Straus/Pippenger
        # path rather than the small-group naive fallback.
        group = modp_group_256()
        bases = [group.power(seed) for seed, _ in terms]
        scalars = [scalar for _, scalar in terms]
        assert group.multi_exponentiate(bases, scalars) == _naive_fold(group, bases, scalars)
