"""ElGamal encryption, re-encryption, homomorphism and threshold decryption."""

import pytest

from repro.crypto.elgamal import ElGamal
from repro.errors import VerificationError


class TestBasicEncryption:
    def test_encrypt_decrypt_roundtrip(self, group, elgamal):
        keys = elgamal.keygen()
        message = group.power(777)
        assert elgamal.decrypt(keys.secret, elgamal.encrypt(keys.public, message)) == message

    def test_encryption_is_randomized(self, group, elgamal):
        keys = elgamal.keygen()
        message = group.power(5)
        assert elgamal.encrypt(keys.public, message) != elgamal.encrypt(keys.public, message)

    def test_fixed_randomness_is_deterministic(self, group, elgamal):
        keys = elgamal.keygen()
        message = group.power(5)
        assert elgamal.encrypt(keys.public, message, 42) == elgamal.encrypt(keys.public, message, 42)

    def test_wrong_key_does_not_decrypt(self, group, elgamal):
        keys = elgamal.keygen()
        other = elgamal.keygen()
        message = group.power(9)
        assert elgamal.decrypt(other.secret, elgamal.encrypt(keys.public, message)) != message

    def test_integer_encoding_roundtrip(self, elgamal):
        keys = elgamal.keygen()
        ciphertext = elgamal.encrypt_int(keys.public, 37)
        assert elgamal.decrypt_int(keys.secret, ciphertext, max_value=100) == 37

    def test_keygen_with_explicit_secret(self, group, elgamal):
        keys = elgamal.keygen(secret=1234)
        assert keys.public == group.power(1234)


class TestReencryption:
    def test_reencryption_preserves_plaintext(self, group, elgamal):
        keys = elgamal.keygen()
        message = group.power(11)
        ciphertext = elgamal.encrypt(keys.public, message)
        refreshed = elgamal.reencrypt(keys.public, ciphertext)
        assert refreshed != ciphertext
        assert elgamal.decrypt(keys.secret, refreshed) == message

    def test_reencryption_composes_additively(self, group, elgamal):
        keys = elgamal.keygen()
        message = group.power(3)
        ciphertext = elgamal.encrypt(keys.public, message, 10)
        double = elgamal.reencrypt(keys.public, ciphertext, 20)
        assert double == elgamal.encrypt(keys.public, message, 30)

    def test_zero_reencryption_of_trivial_encryption(self, group, elgamal):
        keys = elgamal.keygen()
        message = group.power(4)
        trivial = elgamal.encrypt(keys.public, message, randomness=0)
        assert trivial.c1 == group.identity
        assert trivial.c2 == message


class TestHomomorphism:
    def test_multiplication_of_ciphertexts(self, group, elgamal):
        keys = elgamal.keygen()
        a = elgamal.encrypt(keys.public, group.power(6))
        b = elgamal.encrypt(keys.public, group.power(7))
        assert elgamal.decrypt(keys.secret, a.multiply(b)) == group.power(13)

    def test_exponentiation_of_ciphertext(self, group, elgamal):
        keys = elgamal.keygen()
        ciphertext = elgamal.encrypt(keys.public, group.power(2))
        assert elgamal.decrypt(keys.secret, ciphertext.exponentiate(5)) == group.power(10)

    def test_encrypt_identity_is_multiplicative_unit(self, group, elgamal):
        keys = elgamal.keygen()
        message = group.power(8)
        ciphertext = elgamal.encrypt(keys.public, message)
        zero = elgamal.encrypt_identity(keys.public)
        assert elgamal.decrypt(keys.secret, ciphertext.multiply(zero)) == message


class TestDecryptionShares:
    def test_share_verifies(self, group, elgamal):
        keys = elgamal.keygen()
        ciphertext = elgamal.encrypt(keys.public, group.power(3))
        share = elgamal.decryption_share(keys.secret, ciphertext)
        assert elgamal.verify_decryption_share(keys.public, ciphertext, share)

    def test_share_with_wrong_secret_fails_verification(self, group, elgamal):
        keys = elgamal.keygen()
        other = elgamal.keygen()
        ciphertext = elgamal.encrypt(keys.public, group.power(3))
        bogus = elgamal.decryption_share(other.secret, ciphertext)
        assert not elgamal.verify_decryption_share(keys.public, ciphertext, bogus)

    def test_combine_requires_valid_shares(self, group, elgamal, dkg):
        message = group.power(21)
        ciphertext = elgamal.encrypt(dkg.public_key, message)
        shares = [member.decryption_share(elgamal, ciphertext) for member in dkg.members]
        publics = [member.public for member in dkg.members]
        assert elgamal.combine_decryption_shares(ciphertext, publics, shares) == message
        # Corrupt one share: verification must reject it.
        with pytest.raises(VerificationError):
            elgamal.combine_decryption_shares(ciphertext, publics, [shares[1]] + shares[1:], verify=True)

    def test_combine_share_count_mismatch(self, group, elgamal, dkg):
        ciphertext = elgamal.encrypt(dkg.public_key, group.power(1))
        shares = [member.decryption_share(elgamal, ciphertext) for member in dkg.members]
        with pytest.raises(ValueError):
            elgamal.combine_decryption_shares(ciphertext, [dkg.members[0].public], shares)


class TestCiphertextValueSemantics:
    def test_equality_and_hash(self, group, elgamal):
        keys = elgamal.keygen()
        a = elgamal.encrypt(keys.public, group.power(2), 5)
        b = elgamal.encrypt(keys.public, group.power(2), 5)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_to_bytes_changes_with_content(self, group, elgamal):
        keys = elgamal.keygen()
        a = elgamal.encrypt(keys.public, group.power(2), 5)
        b = elgamal.encrypt(keys.public, group.power(3), 5)
        assert a.to_bytes() != b.to_bytes()
