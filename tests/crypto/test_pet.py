"""Plaintext-equivalence tests (the Civitas/JCJ filtering primitive)."""


from repro.crypto.elgamal import ElGamalCiphertext
from repro.crypto.pet import (
    pet_contribution,
    plaintext_equivalence_test,
    verify_pet_contribution,
)


class TestPet:
    def test_equal_plaintexts_detected(self, group, elgamal, dkg):
        message = group.power(5)
        a = elgamal.encrypt(dkg.public_key, message)
        b = elgamal.encrypt(dkg.public_key, message)
        assert plaintext_equivalence_test(dkg, a, b).equal

    def test_unequal_plaintexts_detected(self, group, elgamal, dkg):
        a = elgamal.encrypt(dkg.public_key, group.power(5))
        b = elgamal.encrypt(dkg.public_key, group.power(6))
        assert not plaintext_equivalence_test(dkg, a, b).equal

    def test_pet_does_not_reveal_plaintexts(self, group, elgamal, dkg):
        """The blinded quotient decrypts to the identity or to a random element,
        never to either plaintext."""
        a = elgamal.encrypt(dkg.public_key, group.power(5))
        b = elgamal.encrypt(dkg.public_key, group.power(6))
        result = plaintext_equivalence_test(dkg, a, b)
        combined = None
        for contribution in result.contributions:
            combined = contribution.blinded if combined is None else combined.multiply(contribution.blinded)
        plaintext = dkg.decrypt(combined)
        assert plaintext not in (group.power(5), group.power(6))

    def test_ciphertext_equal_to_itself(self, group, elgamal, dkg):
        a = elgamal.encrypt(dkg.public_key, group.power(9))
        assert plaintext_equivalence_test(dkg, a, a).equal

    def test_contribution_count_matches_members(self, group, elgamal, dkg):
        a = elgamal.encrypt(dkg.public_key, group.power(1))
        b = elgamal.encrypt(dkg.public_key, group.power(1))
        result = plaintext_equivalence_test(dkg, a, b)
        assert len(result.contributions) == dkg.num_members


class TestPetContribution:
    def test_contribution_verifies(self, group, elgamal, dkg):
        a = elgamal.encrypt(dkg.public_key, group.power(2))
        b = elgamal.encrypt(dkg.public_key, group.power(3))
        quotient = ElGamalCiphertext(a.c1 * b.c1.inverse(), a.c2 * b.c2.inverse())
        contribution = pet_contribution(quotient, group.random_scalar())
        assert verify_pet_contribution(quotient, contribution)

    def test_contribution_against_wrong_quotient_fails(self, group, elgamal, dkg):
        a = elgamal.encrypt(dkg.public_key, group.power(2))
        b = elgamal.encrypt(dkg.public_key, group.power(3))
        quotient = ElGamalCiphertext(a.c1 * b.c1.inverse(), a.c2 * b.c2.inverse())
        other = ElGamalCiphertext(a.c1, a.c2)
        contribution = pet_contribution(quotient, group.random_scalar())
        assert not verify_pet_contribution(other, contribution)
