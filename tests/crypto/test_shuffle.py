"""Verifiable re-encryption shuffles (single ciphertexts)."""

import pytest

from repro.crypto.shuffle import (
    MixCascadeResult,
    VerifiableShuffle,
    assert_valid_shuffle,
    mix_cascade,
    random_permutation,
    reencryption_shuffle,
    shuffle_with_proof,
    verify_mix_cascade,
    verify_shuffle,
)
from repro.errors import VerificationError


@pytest.fixture()
def ciphertexts(group, elgamal, dkg):
    return [elgamal.encrypt(dkg.public_key, group.power(value)) for value in range(5)]


class TestPermutation:
    def test_random_permutation_is_a_permutation(self):
        for n in [1, 2, 5, 20]:
            assert sorted(random_permutation(n)) == list(range(n))

    def test_zero_length(self):
        assert random_permutation(0) == []


class TestReencryptionShuffle:
    def test_preserves_multiset_of_plaintexts(self, group, elgamal, dkg, ciphertexts):
        outputs, _, _ = reencryption_shuffle(elgamal, dkg.public_key, ciphertexts)
        decrypted = sorted(group.decode_int(dkg.decrypt(c)) for c in outputs)
        assert decrypted == list(range(5))

    def test_explicit_permutation_and_randomness(self, group, elgamal, dkg, ciphertexts):
        permutation = [4, 3, 2, 1, 0]
        randomness = [1, 2, 3, 4, 5]
        outputs, _, _ = reencryption_shuffle(elgamal, dkg.public_key, ciphertexts, permutation, randomness)
        assert outputs[0] == elgamal.reencrypt(dkg.public_key, ciphertexts[4], 1)

    def test_outputs_differ_from_inputs(self, elgamal, dkg, ciphertexts):
        outputs, _, _ = reencryption_shuffle(elgamal, dkg.public_key, ciphertexts)
        assert all(output not in ciphertexts for output in outputs)


class TestShuffleProof:
    def test_honest_shuffle_verifies(self, elgamal, dkg, ciphertexts):
        shuffled = shuffle_with_proof(elgamal, dkg.public_key, ciphertexts, rounds=8)
        assert verify_shuffle(elgamal, dkg.public_key, ciphertexts, shuffled)

    def test_soundness_bits_reported(self, elgamal, dkg, ciphertexts):
        shuffled = shuffle_with_proof(elgamal, dkg.public_key, ciphertexts, rounds=6)
        assert shuffled.proof.soundness_bits == 6

    def test_tampered_output_rejected(self, group, elgamal, dkg, ciphertexts):
        shuffled = shuffle_with_proof(elgamal, dkg.public_key, ciphertexts, rounds=8)
        tampered_outputs = list(shuffled.outputs)
        tampered_outputs[0] = elgamal.encrypt(dkg.public_key, group.power(99))
        tampered = VerifiableShuffle(outputs=tampered_outputs, proof=shuffled.proof)
        assert not verify_shuffle(elgamal, dkg.public_key, ciphertexts, tampered)

    def test_proof_bound_to_inputs(self, group, elgamal, dkg, ciphertexts):
        shuffled = shuffle_with_proof(elgamal, dkg.public_key, ciphertexts, rounds=8)
        other_inputs = [elgamal.encrypt(dkg.public_key, group.power(value + 10)) for value in range(5)]
        assert not verify_shuffle(elgamal, dkg.public_key, other_inputs, shuffled)

    def test_assert_helper_raises(self, group, elgamal, dkg, ciphertexts):
        shuffled = shuffle_with_proof(elgamal, dkg.public_key, ciphertexts, rounds=4)
        bad = VerifiableShuffle(outputs=list(reversed(shuffled.outputs)), proof=shuffled.proof)
        with pytest.raises(VerificationError):
            assert_valid_shuffle(elgamal, dkg.public_key, ciphertexts, bad)

    def test_single_element_shuffle(self, group, elgamal, dkg):
        single = [elgamal.encrypt(dkg.public_key, group.power(1))]
        shuffled = shuffle_with_proof(elgamal, dkg.public_key, single, rounds=4)
        assert verify_shuffle(elgamal, dkg.public_key, single, shuffled)


class TestMixCascade:
    def test_cascade_verifies_and_preserves_plaintexts(self, group, elgamal, dkg, ciphertexts):
        cascade = mix_cascade(elgamal, dkg.public_key, ciphertexts, num_mixers=3, rounds=4)
        assert verify_mix_cascade(elgamal, dkg.public_key, ciphertexts, cascade)
        decrypted = sorted(group.decode_int(dkg.decrypt(c)) for c in cascade.outputs)
        assert decrypted == list(range(5))

    def test_cascade_has_one_stage_per_mixer(self, elgamal, dkg, ciphertexts):
        cascade = mix_cascade(elgamal, dkg.public_key, ciphertexts, num_mixers=4, rounds=2)
        assert len(cascade.stages) == 4

    def test_tampered_middle_stage_detected(self, group, elgamal, dkg, ciphertexts):
        cascade = mix_cascade(elgamal, dkg.public_key, ciphertexts, num_mixers=2, rounds=4)
        tampered_stage = VerifiableShuffle(
            outputs=[elgamal.encrypt(dkg.public_key, group.power(7))] * len(ciphertexts),
            proof=cascade.stages[0].proof,
        )
        tampered = MixCascadeResult(stages=[tampered_stage, cascade.stages[1]])
        assert not verify_mix_cascade(elgamal, dkg.public_key, ciphertexts, tampered)

    def test_empty_cascade_outputs_empty(self):
        assert MixCascadeResult(stages=[]).outputs == []
