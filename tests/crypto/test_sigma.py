"""Σ-protocol session ordering (the voter-observable bit)."""

import pytest

from repro.crypto.sigma import (
    Move,
    SOUND_ORDER,
    UNSOUND_ORDER,
    SigmaSession,
    SigmaTranscript,
    require_move_order,
)
from repro.errors import ProtocolError


class TestSigmaSession:
    def test_sound_order_detected(self):
        session = SigmaSession()
        for move in SOUND_ORDER:
            session.record(move)
        assert session.is_complete
        assert session.is_sound_order

    def test_unsound_order_detected(self):
        session = SigmaSession()
        for move in UNSOUND_ORDER:
            session.record(move)
        assert session.is_complete
        assert not session.is_sound_order

    def test_duplicate_move_rejected(self):
        session = SigmaSession()
        session.record(Move.COMMIT)
        with pytest.raises(ProtocolError):
            session.record(Move.COMMIT)

    def test_incomplete_session_not_sound(self):
        session = SigmaSession()
        session.record(Move.COMMIT)
        assert not session.is_complete
        assert not session.is_sound_order

    def test_observed_order_exposed(self):
        session = SigmaSession()
        session.record(Move.CHALLENGE)
        session.record(Move.COMMIT)
        assert session.observed_order == (Move.CHALLENGE, Move.COMMIT)

    def test_require_move_order_passes(self):
        session = SigmaSession()
        for move in SOUND_ORDER:
            session.record(move)
        require_move_order(session, SOUND_ORDER)

    def test_require_move_order_raises(self):
        session = SigmaSession()
        for move in UNSOUND_ORDER:
            session.record(move)
        with pytest.raises(ProtocolError):
            require_move_order(session, SOUND_ORDER, context="real credential")


class TestSigmaTranscript:
    def test_fingerprint_is_deterministic(self):
        transcript = SigmaTranscript(statement=b"s", commit=b"c", challenge=1, response=2)
        assert transcript.fingerprint() == transcript.fingerprint()

    def test_fingerprint_changes_with_content(self):
        a = SigmaTranscript(statement=b"s", commit=b"c", challenge=1, response=2)
        b = SigmaTranscript(statement=b"s", commit=b"c", challenge=1, response=3)
        assert a.fingerprint() != b.fingerprint()

    def test_transcript_is_order_free(self):
        """The printed artefact carries no trace of which move came first."""
        transcript = SigmaTranscript(statement=b"s", commit=b"c", challenge=1, response=2)
        field_names = set(vars(transcript))
        assert "order" not in field_names and "moves" not in field_names
