"""Tests specific to the mod-p Schnorr-group backend."""

import pytest

from repro.crypto.modp_group import (
    modp_group_2048,
    modp_group_256,
    testing_group,
    _is_probable_prime,
)


class TestParameters:
    def test_testing_group_is_safe_prime(self):
        group = testing_group()
        assert _is_probable_prime(group.modulus)
        assert _is_probable_prime(group.order)
        assert group.modulus == 2 * group.order + 1

    def test_256_bit_group_is_safe_prime(self):
        group = modp_group_256()
        assert group.modulus.bit_length() == 256
        assert _is_probable_prime(group.order)

    def test_2048_bit_group_parameters(self):
        group = modp_group_2048()
        assert group.modulus.bit_length() == 2048
        assert group.modulus == 2 * group.order + 1

    def test_groups_are_cached_singletons(self):
        assert testing_group() is testing_group()

    def test_generator_is_quadratic_residue(self):
        group = testing_group()
        assert pow(group.generator.value, group.order, group.modulus) == 1


class TestMembership:
    def test_generated_elements_are_members(self):
        group = testing_group()
        for _ in range(10):
            assert group.is_member(group.power(group.random_scalar()))

    def test_non_member_detected(self):
        group = testing_group()
        # A generator of the full group Z_p* is not in the order-q subgroup.
        candidate = 7
        while pow(candidate, group.order, group.modulus) == 1:
            candidate += 1
        assert not group.is_member(group.element(candidate))

    def test_element_from_bytes_rejects_out_of_range(self):
        group = testing_group()
        too_large = (group.modulus + 5).to_bytes(group.element_bytes + 1, "big")
        with pytest.raises(ValueError):
            group.element_from_bytes(too_large)

    def test_cross_group_operation_rejected(self):
        a = testing_group().power(3)
        b = modp_group_256().power(3)
        with pytest.raises(TypeError):
            a.operate(b)


class TestPrimalityHelper:
    @pytest.mark.parametrize("prime", [2, 3, 5, 97, 104729, 2**61 - 1])
    def test_accepts_primes(self, prime):
        assert _is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 100, 561, 2**61 - 3])
    def test_rejects_composites(self, composite):
        assert not _is_probable_prime(composite)
