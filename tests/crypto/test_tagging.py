"""Distributed deterministic tagging (Votegral's linear-time filter)."""

import pytest

from repro.crypto.schnorr import schnorr_keygen
from repro.crypto.tagging import TaggingAuthority, assert_valid_tag, verify_blinded_tag
from repro.errors import VerificationError


class TestDeterminism:
    def test_same_input_same_tag(self, group):
        authority = TaggingAuthority.create(group, 3)
        element = group.power(1234)
        assert authority.blind_element(element).value == authority.blind_element(element).value

    def test_different_inputs_different_tags(self, group):
        authority = TaggingAuthority.create(group, 3)
        assert authority.blind_element(group.power(1)).value != authority.blind_element(group.power(2)).value

    def test_fresh_authority_produces_unlinkable_tags(self, group):
        element = group.power(7)
        first = TaggingAuthority.create(group, 2).blind_element(element).value
        second = TaggingAuthority.create(group, 2).blind_element(element).value
        assert first != second

    def test_tag_equals_collective_exponent(self, group):
        authority = TaggingAuthority.create(group, 3)
        element = group.power(9)
        exponent = 1
        for secret in authority.secrets:
            exponent = (exponent * secret) % group.order
        assert authority.blind_element(element).value == element ** exponent


class TestCiphertextTagging:
    def test_blind_and_decrypt_matches_plain_blinding(self, group, elgamal, dkg):
        authority = TaggingAuthority.create(group, dkg.num_members)
        credential = schnorr_keygen(group)
        ciphertext = elgamal.encrypt(dkg.public_key, credential.public)
        assert authority.blind_and_decrypt(dkg, ciphertext) == authority.blind_element(credential.public).value

    def test_real_matches_fake_does_not(self, group, elgamal, dkg):
        """The exact tally-filter situation: a real ballot's tag matches the
        registration tag; a fake ballot's tag does not."""
        authority = TaggingAuthority.create(group, dkg.num_members)
        real = schnorr_keygen(group)
        fake = schnorr_keygen(group)
        registration_tag = elgamal.encrypt(dkg.public_key, real.public)
        decrypted_tag = authority.blind_and_decrypt(dkg, registration_tag)
        assert authority.blind_element(real.public).value == decrypted_tag
        assert authority.blind_element(fake.public).value != decrypted_tag


class TestVerification:
    def test_valid_chain_verifies(self, group):
        authority = TaggingAuthority.create(group, 3)
        element = group.power(5)
        tag = authority.blind_element(element)
        assert verify_blinded_tag(tag, element, authority.commitments)

    def test_chain_against_wrong_original_fails(self, group):
        authority = TaggingAuthority.create(group, 3)
        tag = authority.blind_element(group.power(5))
        assert not verify_blinded_tag(tag, group.power(6), authority.commitments)

    def test_chain_against_wrong_commitments_fails(self, group):
        authority = TaggingAuthority.create(group, 2)
        other = TaggingAuthority.create(group, 2)
        element = group.power(5)
        tag = authority.blind_element(element)
        assert not verify_blinded_tag(tag, element, other.commitments)

    def test_assert_valid_tag_raises_on_failure(self, group):
        authority = TaggingAuthority.create(group, 2)
        tag = authority.blind_element(group.power(5))
        with pytest.raises(VerificationError):
            assert_valid_tag(tag, group.power(6), authority.commitments)

    def test_tag_key_is_canonical_bytes(self, group):
        authority = TaggingAuthority.create(group, 2)
        tag = authority.blind_element(group.power(5))
        assert tag.key() == tag.value.to_bytes()
