"""The Chaum–Pedersen Σ-protocol: sound prover, simulator, verification."""

import pytest

from repro.crypto.chaum_pedersen import (
    ChaumPedersenProver,
    ChaumPedersenStatement,
    ChaumPedersenTranscript,
    chaum_pedersen_verify,
    fiat_shamir_prove,
    fiat_shamir_verify,
    simulate_chaum_pedersen,
)
from repro.errors import ProtocolError


@pytest.fixture()
def true_statement(group):
    """A statement with a known witness: C1 = g^x, X = h^x."""
    h = group.hash_to_element(b"authority key")
    x = group.random_scalar()
    statement = ChaumPedersenStatement(group.generator, h, group.generator ** x, h ** x)
    return statement, x


@pytest.fixture()
def false_statement(group):
    """A statement with no witness (the two discrete logs differ)."""
    h = group.hash_to_element(b"authority key")
    statement = ChaumPedersenStatement(group.generator, h, group.power(3), h ** 4)
    return statement


class TestSoundProver:
    def test_honest_proof_verifies(self, group, true_statement):
        statement, witness = true_statement
        prover = ChaumPedersenProver(statement, witness)
        prover.commit()
        transcript = prover.respond(group.random_scalar())
        assert chaum_pedersen_verify(transcript)

    def test_respond_before_commit_is_rejected(self, group, true_statement):
        statement, witness = true_statement
        prover = ChaumPedersenProver(statement, witness)
        with pytest.raises(ProtocolError):
            prover.respond(group.random_scalar())

    def test_double_commit_is_rejected(self, true_statement):
        statement, witness = true_statement
        prover = ChaumPedersenProver(statement, witness)
        prover.commit()
        with pytest.raises(ProtocolError):
            prover.commit()

    def test_wrong_witness_fails_verification(self, group, true_statement):
        statement, witness = true_statement
        prover = ChaumPedersenProver(statement, witness + 1)
        prover.commit()
        transcript = prover.respond(group.random_scalar())
        assert not chaum_pedersen_verify(transcript)

    def test_challenge_zero_edge_case(self, group, true_statement):
        statement, witness = true_statement
        prover = ChaumPedersenProver(statement, witness)
        prover.commit()
        assert chaum_pedersen_verify(prover.respond(0))


class TestSimulator:
    def test_simulated_transcript_verifies_without_witness(self, group, false_statement):
        transcript = simulate_chaum_pedersen(false_statement, group.random_scalar())
        assert chaum_pedersen_verify(transcript)

    def test_simulated_and_real_transcripts_share_structure(self, group, true_statement):
        statement, witness = true_statement
        challenge = group.random_scalar()
        prover = ChaumPedersenProver(statement, witness)
        prover.commit()
        real = prover.respond(challenge)
        fake = simulate_chaum_pedersen(statement, challenge)
        # Same statement, same challenge, both verify: on paper they are
        # indistinguishable (the distributions coincide; here we check the
        # verifier accepts both and the fields have the same types/shape).
        assert chaum_pedersen_verify(real) and chaum_pedersen_verify(fake)
        assert real.statement == fake.statement
        assert real.challenge == fake.challenge

    def test_simulator_with_fixed_response(self, group, false_statement):
        transcript = simulate_chaum_pedersen(false_statement, 5, response=7)
        assert transcript.response == 7
        assert chaum_pedersen_verify(transcript)

    def test_tampered_transcript_rejected(self, group, false_statement):
        transcript = simulate_chaum_pedersen(false_statement, group.random_scalar())
        tampered = ChaumPedersenTranscript(
            statement=transcript.statement,
            commit=transcript.commit,
            challenge=transcript.challenge,
            response=(transcript.response + 1) % group.order,
        )
        assert not chaum_pedersen_verify(tampered)


class TestSoundnessIntuition:
    def test_prover_cannot_answer_two_challenges_for_false_statement(self, group, false_statement):
        """A forged commit only answers the one challenge it was built for."""
        challenge = group.random_scalar()
        transcript = simulate_chaum_pedersen(false_statement, challenge)
        other_challenge = (challenge + 1) % group.order
        # Reusing the same commit with a different challenge cannot verify for
        # any response, because that would yield a witness for a false statement.
        statement = transcript.statement
        for candidate_response in [transcript.response, 0, 1, group.random_scalar()]:
            forged = ChaumPedersenTranscript(statement, transcript.commit, other_challenge, candidate_response)
            assert not chaum_pedersen_verify(forged)


class TestFiatShamir:
    def test_nizk_roundtrip(self, group, true_statement):
        statement, witness = true_statement
        proof = fiat_shamir_prove(statement, witness, context=b"test")
        assert fiat_shamir_verify(proof, context=b"test")

    def test_nizk_context_binding(self, group, true_statement):
        statement, witness = true_statement
        proof = fiat_shamir_prove(statement, witness, context=b"ctx-a")
        assert not fiat_shamir_verify(proof, context=b"ctx-b")

    def test_simulated_transcript_fails_fiat_shamir(self, group, false_statement):
        """The simulator cannot target the hash-derived challenge — NIZKs stay sound."""
        transcript = simulate_chaum_pedersen(false_statement, group.random_scalar())
        assert not fiat_shamir_verify(transcript)
