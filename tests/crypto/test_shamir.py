"""Shamir secret sharing and Lagrange interpolation in the exponent."""

import pytest

from repro.crypto.shamir import (
    Share,
    lagrange_coefficient,
    reconstruct_in_exponent,
    reconstruct_secret,
    split_secret,
)


class TestSplitReconstruct:
    def test_threshold_subset_reconstructs(self, group):
        secret = group.random_scalar()
        shares = split_secret(secret, threshold=3, num_shares=5, modulus=group.order)
        assert reconstruct_secret(shares[:3], group.order) == secret

    def test_any_threshold_subset_works(self, group):
        secret = 123456789 % group.order
        shares = split_secret(secret, threshold=2, num_shares=4, modulus=group.order)
        assert reconstruct_secret([shares[1], shares[3]], group.order) == secret
        assert reconstruct_secret([shares[0], shares[2]], group.order) == secret

    def test_fewer_than_threshold_gives_wrong_secret(self, group):
        secret = group.random_scalar()
        shares = split_secret(secret, threshold=3, num_shares=5, modulus=group.order)
        # With only two shares of a degree-2 polynomial the interpolation at 0
        # is (with overwhelming probability) not the secret.
        assert reconstruct_secret(shares[:2], group.order) != secret

    def test_full_set_reconstructs(self, group):
        secret = 42
        shares = split_secret(secret, threshold=5, num_shares=5, modulus=group.order)
        assert reconstruct_secret(shares, group.order) == secret

    def test_invalid_threshold_rejected(self, group):
        with pytest.raises(ValueError):
            split_secret(1, threshold=6, num_shares=5, modulus=group.order)
        with pytest.raises(ValueError):
            split_secret(1, threshold=0, num_shares=5, modulus=group.order)

    def test_unreduced_secret_rejected(self, group):
        with pytest.raises(ValueError):
            split_secret(group.order + 1, threshold=2, num_shares=3, modulus=group.order)

    def test_duplicate_share_indices_rejected(self, group):
        shares = [Share(1, 10), Share(1, 11)]
        with pytest.raises(ValueError):
            reconstruct_secret(shares, group.order)

    def test_empty_share_list_rejected(self, group):
        with pytest.raises(ValueError):
            reconstruct_secret([], group.order)


class TestLagrange:
    def test_coefficients_sum_property(self, group):
        # For a degree-0 polynomial (constant), any share equals the secret, so
        # the weighted sum of identical values must reproduce it.
        indices = [1, 2, 3]
        total = sum(lagrange_coefficient(i, indices, group.order) for i in indices) % group.order
        assert total == 1

    def test_reconstruct_in_exponent(self, group):
        secret = group.random_scalar()
        shares = split_secret(secret, threshold=2, num_shares=3, modulus=group.order)
        base = group.power(group.random_scalar())
        points = {share.index: base ** share.value for share in shares[:2]}
        assert reconstruct_in_exponent(points, group.order) == base ** secret
