"""Distributed key generation and threshold decryption."""

import pytest

from repro.crypto.dkg import DistributedKeyGeneration
from repro.errors import VerificationError


class TestKeyGeneration:
    def test_collective_key_is_product_of_member_keys(self, group):
        dkg = DistributedKeyGeneration.run(group, 4)
        product = group.identity
        for member in dkg.members:
            product = product * member.public
        assert product == dkg.public_key

    def test_collective_secret_matches_public_key(self, group):
        dkg = DistributedKeyGeneration.run(group, 3)
        assert group.power(dkg.collective_secret()) == dkg.public_key

    def test_single_member_degenerates_to_plain_keypair(self, group):
        dkg = DistributedKeyGeneration.run(group, 1)
        assert dkg.num_members == 1
        assert dkg.public_key == dkg.members[0].public

    def test_zero_members_rejected(self, group):
        with pytest.raises(ValueError):
            DistributedKeyGeneration.run(group, 0)

    def test_members_hold_backup_shares(self, group):
        dkg = DistributedKeyGeneration.run(group, 4, threshold=3)
        for member in dkg.members:
            assert len(member.backup_shares) == 4


class TestThresholdDecryption:
    def test_joint_decryption(self, group, elgamal):
        dkg = DistributedKeyGeneration.run(group, 4)
        message = group.power(55)
        assert dkg.decrypt(elgamal.encrypt(dkg.public_key, message)) == message

    def test_decrypt_int(self, group, elgamal):
        dkg = DistributedKeyGeneration.run(group, 3)
        ciphertext = elgamal.encrypt_int(dkg.public_key, 12)
        assert dkg.decrypt_int(ciphertext, max_value=20) == 12

    def test_partial_member_set_rejected(self, group, elgamal):
        dkg = DistributedKeyGeneration.run(group, 3)
        ciphertext = elgamal.encrypt(dkg.public_key, group.power(2))
        with pytest.raises(VerificationError):
            dkg.decrypt(ciphertext, participating=[1, 2])

    def test_unknown_member_index_rejected(self, group, elgamal):
        dkg = DistributedKeyGeneration.run(group, 3)
        ciphertext = elgamal.encrypt(dkg.public_key, group.power(2))
        with pytest.raises(ValueError):
            dkg.decrypt(ciphertext, participating=[1, 2, 9])

    def test_no_single_member_can_decrypt(self, group, elgamal):
        """Privacy: each member's secret alone does not decrypt (Appendix F.2)."""
        dkg = DistributedKeyGeneration.run(group, 4)
        message = group.power(3)
        ciphertext = elgamal.encrypt(dkg.public_key, message)
        for member in dkg.members:
            assert elgamal.decrypt(member.secret, ciphertext) != message

    def test_all_but_one_members_cannot_decrypt(self, group, elgamal):
        """The paper's privacy adversary compromises n_A − 1 members and still fails."""
        dkg = DistributedKeyGeneration.run(group, 4)
        message = group.power(3)
        ciphertext = elgamal.encrypt(dkg.public_key, message)
        partial_secret = sum(m.secret for m in dkg.members[:-1]) % group.order
        assert elgamal.decrypt(partial_secret, ciphertext) != message
