"""Tests of the abstract group API across backends."""

import pytest

from repro.crypto.ed25519 import ed25519_group
from repro.crypto.modp_group import modp_group_256, testing_group


BACKENDS = [testing_group, modp_group_256, ed25519_group]


@pytest.fixture(params=BACKENDS, ids=lambda f: f.__name__)
def any_group(request):
    return request.param()


class TestGroupAlgebra:
    def test_generator_has_declared_order(self, any_group):
        assert any_group.generator ** any_group.order == any_group.identity

    def test_identity_is_neutral(self, any_group):
        element = any_group.power(any_group.random_scalar())
        assert element * any_group.identity == element
        assert any_group.identity * element == element

    def test_associativity(self, any_group):
        a = any_group.power(any_group.random_scalar())
        b = any_group.power(any_group.random_scalar())
        c = any_group.power(any_group.random_scalar())
        assert (a * b) * c == a * (b * c)

    def test_inverse(self, any_group):
        element = any_group.power(any_group.random_scalar())
        assert element * element.inverse() == any_group.identity

    def test_exponent_addition(self, any_group):
        a, b = any_group.random_scalar(), any_group.random_scalar()
        assert any_group.power(a) * any_group.power(b) == any_group.power((a + b) % any_group.order)

    def test_exponent_zero_gives_identity(self, any_group):
        element = any_group.power(any_group.random_scalar())
        assert element ** 0 == any_group.identity

    def test_division_operator(self, any_group):
        a = any_group.power(5)
        b = any_group.power(3)
        assert a / b == any_group.power(2)

    def test_diffie_hellman_commutes(self, any_group):
        a, b = any_group.random_scalar(), any_group.random_scalar()
        assert (any_group.power(a)) ** b == (any_group.power(b)) ** a


class TestEncoding:
    def test_roundtrip(self, any_group):
        element = any_group.power(any_group.random_scalar())
        assert any_group.element_from_bytes(element.to_bytes()) == element

    def test_encoding_is_canonical(self, any_group):
        scalar = any_group.random_scalar()
        first = any_group.power(scalar).to_bytes()
        second = any_group.power(scalar).to_bytes()
        assert first == second

    def test_identity_roundtrip(self, any_group):
        assert any_group.element_from_bytes(any_group.identity.to_bytes()) == any_group.identity

    def test_hash_to_element_is_deterministic(self, any_group):
        assert any_group.hash_to_element(b"seed") == any_group.hash_to_element(b"seed")

    def test_hash_to_element_differs_by_input(self, any_group):
        assert any_group.hash_to_element(b"a") != any_group.hash_to_element(b"b")


class TestScalars:
    def test_random_scalar_in_range(self, any_group):
        for _ in range(20):
            scalar = any_group.random_scalar()
            assert 1 <= scalar < any_group.order

    def test_hash_to_scalar_deterministic(self, any_group):
        assert any_group.hash_to_scalar(b"x", b"y") == any_group.hash_to_scalar(b"x", b"y")

    def test_hash_to_scalar_length_prefixing(self, any_group):
        # (b"ab", b"c") must not collide with (b"a", b"bc").
        assert any_group.hash_to_scalar(b"ab", b"c") != any_group.hash_to_scalar(b"a", b"bc")


class TestIntegerEncoding:
    def test_encode_decode_roundtrip(self, group):
        for value in [0, 1, 2, 17, 255]:
            assert group.decode_int(group.encode_int(value), max_value=300) == value

    def test_decode_out_of_range_raises(self, group):
        element = group.encode_int(50)
        with pytest.raises(ValueError):
            group.decode_int(element, max_value=10)

    def test_encode_negative_raises(self, group):
        with pytest.raises(ValueError):
            group.encode_int(-1)

    def test_homomorphic_addition_in_exponent(self, group):
        assert group.encode_int(3) * group.encode_int(4) == group.encode_int(7)


class TestMultiExponentiation:
    def test_matches_naive_product(self, group):
        bases = [group.power(group.random_scalar()) for _ in range(4)]
        scalars = [group.random_scalar() for _ in range(4)]
        expected = group.identity
        for base, scalar in zip(bases, scalars):
            expected = expected * (base ** scalar)
        assert group.multi_exponentiate(bases, scalars) == expected

    def test_empty_product_is_identity(self, group):
        assert group.multi_exponentiate([], []) == group.identity
