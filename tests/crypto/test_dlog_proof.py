"""Schnorr proofs of knowledge of a discrete log."""


from repro.crypto.dlog_proof import DlogProof, prove_dlog, verify_dlog


class TestDlogProof:
    def test_valid_proof_verifies(self, group):
        witness = group.random_scalar()
        assert verify_dlog(prove_dlog(group.generator, witness))

    def test_value_matches_witness(self, group):
        witness = 4321
        proof = prove_dlog(group.generator, witness)
        assert proof.value == group.power(witness)

    def test_context_binding(self, group):
        proof = prove_dlog(group.generator, group.random_scalar(), context=b"ballot")
        assert verify_dlog(proof, context=b"ballot")
        assert not verify_dlog(proof, context=b"other")

    def test_non_generator_base(self, group):
        base = group.hash_to_element(b"independent")
        proof = prove_dlog(base, group.random_scalar())
        assert verify_dlog(proof)

    def test_tampered_value_rejected(self, group):
        proof = prove_dlog(group.generator, group.random_scalar())
        forged = DlogProof(proof.base, group.power(1), proof.commitment, proof.response)
        assert not verify_dlog(forged)

    def test_tampered_response_rejected(self, group):
        proof = prove_dlog(group.generator, group.random_scalar())
        forged = DlogProof(proof.base, proof.value, proof.commitment, (proof.response + 1) % group.order)
        assert not verify_dlog(forged)

    def test_deterministic_with_fixed_nonce(self, group):
        a = prove_dlog(group.generator, 7, nonce=13)
        b = prove_dlog(group.generator, 7, nonce=13)
        assert a == b

    def test_serialization_is_stable(self, group):
        proof = prove_dlog(group.generator, 7, nonce=13)
        assert proof.to_bytes() == prove_dlog(group.generator, 7, nonce=13).to_bytes()
