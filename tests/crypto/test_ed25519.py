"""Tests specific to the Edwards25519 backend."""

import pytest

from repro.crypto.ed25519 import ed25519_group, _BASE_X, _BASE_Y, _P, _Q


class TestCurveConstants:
    def test_base_point_on_curve(self):
        d = (-121665 * pow(121666, -1, _P)) % _P
        x, y = _BASE_X, _BASE_Y
        lhs = (-x * x + y * y) % _P
        rhs = (1 + d * x * x * y * y) % _P
        assert lhs == rhs

    def test_order_is_prime_sized(self):
        assert _Q.bit_length() == 253

    def test_base_point_has_prime_order(self):
        group = ed25519_group()
        assert group.generator ** _Q == group.identity
        assert group.generator ** 1 != group.identity


class TestEncoding:
    def test_encoding_is_32_bytes(self):
        group = ed25519_group()
        assert len(group.generator.to_bytes()) == 32

    def test_known_base_point_encoding(self):
        # RFC 8032: the standard base point encodes to 0x58666666...66 (y = 4/5).
        group = ed25519_group()
        encoded = group.generator.to_bytes()
        assert encoded.hex() == "5866666666666666666666666666666666666666666666666666666666666666"

    def test_decode_rejects_wrong_length(self):
        group = ed25519_group()
        with pytest.raises(ValueError):
            group.element_from_bytes(b"\x01" * 31)

    def test_decode_rejects_out_of_range_coordinate(self):
        group = ed25519_group()
        # y = 2^255 - 19 equals the field prime and is therefore invalid.
        bad = (2**255 - 19).to_bytes(32, "little")
        with pytest.raises(ValueError):
            group.element_from_bytes(bad)

    def test_negation_flips_sign_bit_only(self):
        group = ed25519_group()
        point = group.power(12345)
        negated = point.inverse()
        assert point.to_bytes()[:31] == negated.to_bytes()[:31]
        assert point.to_bytes() != negated.to_bytes()


class TestSubgroup:
    def test_hash_to_element_lands_in_prime_subgroup(self):
        group = ed25519_group()
        element = group.hash_to_element(b"independent generator")
        assert element ** _Q == group.identity
        assert element != group.identity

    def test_identity_encoding_roundtrip(self):
        group = ed25519_group()
        assert group.element_from_bytes(group.identity.to_bytes()) == group.identity

    def test_scalar_multiplication_matches_addition(self):
        group = ed25519_group()
        g = group.generator
        assert g ** 5 == g * g * g * g * g
