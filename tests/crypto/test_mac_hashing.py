"""MAC authorization tags and hashing helpers."""

import pytest

from repro.crypto.hashing import hash_hex, sha256, sha512
from repro.crypto.mac import mac_keygen, mac_sign, mac_verify


class TestMac:
    def test_sign_verify_roundtrip(self):
        key = mac_keygen()
        tag = mac_sign(key, b"voter-001")
        assert mac_verify(key, b"voter-001", tag)

    def test_wrong_message_rejected(self):
        key = mac_keygen()
        tag = mac_sign(key, b"voter-001")
        assert not mac_verify(key, b"voter-002", tag)

    def test_wrong_key_rejected(self):
        tag = mac_sign(mac_keygen(), b"voter-001")
        assert not mac_verify(mac_keygen(), b"voter-001", tag)

    def test_truncated_tag_roundtrip(self):
        """Check-in tickets use 16-byte tags to fit a barcode."""
        key = mac_keygen()
        tag = mac_sign(key, b"alice", length=16)
        assert len(tag) == 16
        assert mac_verify(key, b"alice", tag)

    def test_too_short_tag_rejected(self):
        key = mac_keygen()
        with pytest.raises(ValueError):
            mac_sign(key, b"alice", length=4)
        assert not mac_verify(key, b"alice", b"\x00" * 4)

    def test_default_tag_length(self):
        assert len(mac_sign(mac_keygen(), b"x")) == 32

    def test_keygen_produces_distinct_keys(self):
        assert mac_keygen() != mac_keygen()


class TestHashing:
    def test_sha256_deterministic(self):
        assert sha256(b"a", b"b") == sha256(b"a", b"b")

    def test_sha256_length_prefixing_prevents_ambiguity(self):
        assert sha256(b"ab", b"c") != sha256(b"a", b"bc")

    def test_sha256_output_length(self):
        assert len(sha256(b"x")) == 32

    def test_sha512_output_length(self):
        assert len(sha512(b"x")) == 64

    def test_hash_hex_matches_sha256(self):
        assert hash_hex(b"x") == sha256(b"x").hex()

    def test_empty_input(self):
        assert len(sha256()) == 32
        assert sha256() != sha256(b"")
