"""Tests for the pluggable big-integer backend (:mod:`repro.crypto.bigint`).

Backend *selection* semantics are tested in-process (they never mutate the
active backend).  Backend *switching* — which rebuilds the cached group
singletons — runs in subprocesses so the session-scoped group fixtures of
the rest of the suite are never invalidated.  The gmpy2 bit-identity matrix
leg only runs where gmpy2 is installed (CI's optional-deps job).
"""

import os
import subprocess
import sys

import pytest

from repro.crypto import bigint

HAS_GMPY2 = "gmpy2" in bigint.available_backends()


def _run(code: str, **env: str) -> str:
    environment = dict(os.environ)
    environment.pop(bigint.ENV_VAR, None)
    environment["PYTHONPATH"] = "src"
    environment.update(env)
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=environment,
        cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


# A deterministic transcript covering the operations a tally exercises:
# exponentiation, multiplication, inversion, hashing into the group,
# multi-exponentiation and canonical byte encoding.  Printed as a hex
# fingerprint so backend runs can be compared byte-for-byte.
_FINGERPRINT_CODE = """
import hashlib
from repro.crypto.bigint import active_backend
from repro.crypto.modp_group import modp_group_2048

group = modp_group_2048()
h = hashlib.sha256()
element = group.power(0xDEADBEEF)
h.update(element.to_bytes())
h.update(element.inverse().to_bytes())
h.update(group.hash_to_element(b"bit-identity").to_bytes())
bases = [group.power(3 + i) for i in range(8)]
scalars = [(-1) ** i * (0x1234567 << i) for i in range(8)]
h.update(group.multi_exponentiate(bases, scalars).to_bytes())
print(active_backend().name, h.hexdigest())
"""


class TestSelection:
    def test_python_backend_always_available(self):
        assert "python" in bigint.available_backends()

    def test_resolve_auto_returns_some_backend(self):
        assert bigint.resolve_backend("auto").name in ("python", "gmpy2")

    def test_resolve_unknown_name_raises(self):
        with pytest.raises(bigint.BigIntError):
            bigint.resolve_backend("gmp")

    def test_resolve_gmpy2_without_package_raises(self):
        if HAS_GMPY2:
            pytest.skip("gmpy2 installed; the failure path is not reachable")
        with pytest.raises(bigint.BigIntError):
            bigint.resolve_backend("gmpy2")

    def test_require_auto_accepts_active(self):
        assert bigint.require("auto").name == bigint.active_backend().name

    def test_require_matching_name_accepts(self):
        assert bigint.require(bigint.active_backend().name) is not None

    def test_require_mismatch_raises_with_remediation(self):
        active = bigint.active_backend().name
        other = "gmpy2" if active == "python" else "python"
        with pytest.raises(bigint.BigIntError, match=bigint.ENV_VAR):
            bigint.require(other)

    def test_require_unknown_name_raises(self):
        with pytest.raises(bigint.BigIntError):
            bigint.require("fastest")


class TestEnvSelection:
    def test_env_var_selects_python(self):
        out = _run(
            "from repro.crypto.bigint import active_backend; print(active_backend().name)",
            REPRO_BIGINT="python",
        )
        assert out == "python"

    def test_default_is_auto(self):
        out = _run("from repro.crypto.bigint import active_backend; print(active_backend().name)")
        assert out == ("gmpy2" if HAS_GMPY2 else "python")


class TestSwitching:
    def test_switch_rebuilds_group_singletons(self):
        # Same-name switch still runs the reset hooks, so this needs no
        # optional dependency to pin the rebuild contract.
        out = _run(
            "from repro.crypto import bigint\n"
            "from repro.crypto.modp_group import testing_group\n"
            "before = testing_group()\n"
            "element = before.power(7)\n"
            "previous = bigint.set_active_backend('python')\n"
            "after = testing_group()\n"
            "print(previous, before is after, element.to_bytes() == after.power(7).to_bytes())",
            REPRO_BIGINT="python",
        )
        assert out == "python False True"


class TestBitIdentity:
    def test_python_fingerprint_is_deterministic(self):
        first = _run(_FINGERPRINT_CODE, REPRO_BIGINT="python")
        second = _run(_FINGERPRINT_CODE, REPRO_BIGINT="python")
        assert first == second and first.startswith("python ")

    @pytest.mark.skipif(not HAS_GMPY2, reason="gmpy2 not installed")
    def test_gmpy2_transcripts_bit_identical_to_python(self):
        python_out = _run(_FINGERPRINT_CODE, REPRO_BIGINT="python")
        gmpy2_out = _run(_FINGERPRINT_CODE, REPRO_BIGINT="gmpy2")
        assert python_out.split()[1] == gmpy2_out.split()[1]
        assert gmpy2_out.startswith("gmpy2 ")

    @pytest.mark.skipif(not HAS_GMPY2, reason="gmpy2 not installed")
    def test_mpz_values_hash_and_roundtrip_like_int(self):
        import gmpy2

        value = 2**2047 + 12345
        assert hash(gmpy2.mpz(value)) == hash(value)
        assert int(gmpy2.mpz(value)) == value
