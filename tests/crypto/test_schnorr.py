"""Schnorr signatures."""


from repro.crypto.ed25519 import ed25519_group
from repro.crypto.schnorr import (
    SchnorrSignature,
    public_key_from_secret,
    schnorr_keygen,
    schnorr_sign,
    schnorr_verify,
)


class TestSignVerify:
    def test_valid_signature_verifies(self, group):
        keys = schnorr_keygen(group)
        signature = schnorr_sign(keys, b"register alice")
        assert schnorr_verify(keys.public, b"register alice", signature)

    def test_wrong_message_rejected(self, group):
        keys = schnorr_keygen(group)
        signature = schnorr_sign(keys, b"register alice")
        assert not schnorr_verify(keys.public, b"register bob", signature)

    def test_wrong_key_rejected(self, group):
        keys = schnorr_keygen(group)
        other = schnorr_keygen(group)
        signature = schnorr_sign(keys, b"msg")
        assert not schnorr_verify(other.public, b"msg", signature)

    def test_tampered_response_rejected(self, group):
        keys = schnorr_keygen(group)
        signature = schnorr_sign(keys, b"msg")
        forged = SchnorrSignature(signature.commitment, (signature.response + 1) % group.order)
        assert not schnorr_verify(keys.public, b"msg", forged)

    def test_tampered_commitment_rejected(self, group):
        keys = schnorr_keygen(group)
        signature = schnorr_sign(keys, b"msg")
        forged = SchnorrSignature(group.power(3), signature.response)
        assert not schnorr_verify(keys.public, b"msg", forged)

    def test_empty_message(self, group):
        keys = schnorr_keygen(group)
        assert schnorr_verify(keys.public, b"", schnorr_sign(keys, b""))

    def test_signature_over_ed25519(self):
        group = ed25519_group()
        keys = schnorr_keygen(group)
        assert schnorr_verify(keys.public, b"paper curve", schnorr_sign(keys, b"paper curve"))


class TestKeyHandling:
    def test_public_key_from_secret(self, group):
        keys = schnorr_keygen(group)
        assert public_key_from_secret(group, keys.secret) == keys.public

    def test_explicit_secret(self, group):
        keys = schnorr_keygen(group, secret=99)
        assert keys.secret == 99
        assert keys.public == group.power(99)

    def test_deterministic_nonce_gives_deterministic_signature(self, group):
        keys = schnorr_keygen(group, secret=5)
        assert schnorr_sign(keys, b"m", nonce=17) == schnorr_sign(keys, b"m", nonce=17)

    def test_nonce_reuse_leaks_secret(self, group):
        # Documented hazard: two signatures with the same nonce on different
        # messages reveal the secret key.  The test reconstructs it.
        keys = schnorr_keygen(group)
        nonce = group.random_scalar()
        sig1 = schnorr_sign(keys, b"first", nonce=nonce)
        sig2 = schnorr_sign(keys, b"second", nonce=nonce)
        from repro.crypto.schnorr import _challenge

        c1 = _challenge(group, sig1.commitment, keys.public, b"first")
        c2 = _challenge(group, sig2.commitment, keys.public, b"second")
        recovered = ((sig1.response - sig2.response) * pow(c1 - c2, -1, group.order)) % group.order
        assert recovered == keys.secret

    def test_signature_serialization_length(self, group):
        keys = schnorr_keygen(group)
        data = schnorr_sign(keys, b"m").to_bytes()
        assert len(data) == group.element_bytes + 64
