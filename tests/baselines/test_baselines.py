"""Baseline system kernels: interface, measurement and relative ordering."""

import pytest

from repro.baselines import ALL_SYSTEMS, PhaseName
from repro.baselines.civitas import CivitasSystem
from repro.baselines.swisspost import SwissPostSystem
from repro.baselines.voteagain import VoteAgainSystem
from repro.baselines.votegral import TripCoreSystem
from repro.crypto.modp_group import testing_group


@pytest.fixture(scope="module")
def fast_group():
    return testing_group()


class TestInterface:
    def test_all_four_systems_registered(self):
        assert set(ALL_SYSTEMS) == {"SwissPost", "VoteAgain", "TRIP-Core", "Civitas"}

    def test_only_civitas_is_quadratic(self):
        assert CivitasSystem.quadratic_tally
        assert not SwissPostSystem.quadratic_tally
        assert not VoteAgainSystem.quadratic_tally
        assert not TripCoreSystem.quadratic_tally

    def test_four_talliers_everywhere(self):
        for cls in ALL_SYSTEMS.values():
            assert cls.num_talliers == 4

    def test_civitas_defaults_to_large_modulus_group(self):
        assert CivitasSystem().group.name == "modp-2048"

    def test_civitas_group_override_for_tests(self, fast_group):
        assert CivitasSystem(fast_group).group is fast_group


class TestMeasurement:
    def test_measure_phase_returns_positive_latency(self, fast_group):
        system = TripCoreSystem(fast_group)
        measurement = system.measure_phase(PhaseName.REGISTRATION, 5)
        assert measurement.wall_seconds > 0
        assert measurement.per_voter_seconds > 0
        assert measurement.num_voters == 5

    def test_estimate_small_population_is_direct(self, fast_group):
        system = VoteAgainSystem(fast_group)
        measurement = system.estimate_phase(PhaseName.VOTING, 10, sample_voters=20)
        assert not measurement.extrapolated

    def test_estimate_large_population_is_extrapolated(self, fast_group):
        system = VoteAgainSystem(fast_group)
        measurement = system.estimate_phase(PhaseName.TALLY, 10_000, sample_voters=10)
        assert measurement.extrapolated
        assert measurement.wall_seconds > 0

    def test_quadratic_extrapolation_dominates_linear(self, fast_group):
        """Civitas' extrapolated tally must grow super-linearly."""
        system = CivitasSystem(fast_group)
        model = system.fit_cost_model(PhaseName.TALLY, sample_voters=16)
        assert model.per_pair_seconds > 0
        assert model.predict(1000) / model.predict(100) > 20

    def test_linear_extrapolation_scales_linearly(self, fast_group):
        system = TripCoreSystem(fast_group)
        model = system.fit_cost_model(PhaseName.TALLY, sample_voters=10)
        ratio = model.predict(1000) / model.predict(100)
        assert 9 <= ratio <= 11


class TestRelativeOrdering:
    """The qualitative relations of Figures 5a/5b (who is faster than whom)."""

    def test_registration_ordering(self, fast_group):
        """VoteAgain < TRIP-Core < SwissPost (all on the same group)."""
        voteagain = VoteAgainSystem(fast_group).measure_phase(PhaseName.REGISTRATION, 20)
        trip = TripCoreSystem(fast_group).measure_phase(PhaseName.REGISTRATION, 20)
        swisspost = SwissPostSystem(fast_group).measure_phase(PhaseName.REGISTRATION, 20)
        assert voteagain.wall_seconds < trip.wall_seconds < swisspost.wall_seconds

    def test_civitas_registration_slowest(self, fast_group):
        """Even on the same group, Civitas' multi-teller issuance costs the most."""
        trip = TripCoreSystem(fast_group).measure_phase(PhaseName.REGISTRATION, 20)
        civitas = CivitasSystem(fast_group).measure_phase(PhaseName.REGISTRATION, 20)
        assert civitas.wall_seconds > trip.wall_seconds

    def test_voting_trip_is_cheapest(self, fast_group):
        trip = TripCoreSystem(fast_group).measure_phase(PhaseName.VOTING, 20)
        for cls in (SwissPostSystem, VoteAgainSystem, CivitasSystem):
            other = cls(fast_group).measure_phase(PhaseName.VOTING, 20)
            assert trip.wall_seconds < other.wall_seconds

    def test_tally_ordering_voteagain_trip_swisspost(self, fast_group):
        voteagain = VoteAgainSystem(fast_group).measure_phase(PhaseName.TALLY, 30)
        trip = TripCoreSystem(fast_group).measure_phase(PhaseName.TALLY, 30)
        swisspost = SwissPostSystem(fast_group).measure_phase(PhaseName.TALLY, 30)
        assert voteagain.wall_seconds < trip.wall_seconds < swisspost.wall_seconds

    def test_civitas_tally_orders_of_magnitude_slower_at_scale(self, fast_group):
        civitas = CivitasSystem(fast_group).estimate_phase(PhaseName.TALLY, 10_000, sample_voters=16)
        trip = TripCoreSystem(fast_group).estimate_phase(PhaseName.TALLY, 10_000, sample_voters=16)
        assert civitas.wall_seconds > 50 * trip.wall_seconds
