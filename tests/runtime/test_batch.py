"""Random-linear-combination batch verification: accepts, rejections, fallback."""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto.chaum_pedersen import (
    ChaumPedersenStatement,
    fiat_shamir_prove,
    simulate_chaum_pedersen,
)
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.runtime.batch import (
    batch_chaum_pedersen_verify,
    batch_reencryption_verify,
    batch_schnorr_verify,
    verify_signatures,
)
from repro.runtime.executor import ProcessExecutor, SerialExecutor


@pytest.fixture()
def signature_batch(group):
    items = []
    for index in range(12):
        keypair = schnorr_keygen(group)
        message = f"ballot-{index}".encode()
        items.append((keypair.public, message, schnorr_sign(keypair, message)))
    return items


def _tamper_signature(item, order):
    public, message, signature = item
    forged = dataclasses.replace(signature, response=(signature.response + 1) % order)
    return (public, message, forged)


class TestBatchSchnorr:
    def test_accepts_all_valid(self, signature_batch):
        assert batch_schnorr_verify(signature_batch)

    def test_empty_and_singleton(self, group, signature_batch):
        assert batch_schnorr_verify([])
        assert batch_schnorr_verify(signature_batch[:1])

    @pytest.mark.parametrize("index", [0, 5, 11])
    def test_rejects_single_tampered_signature(self, group, signature_batch, index):
        tampered = list(signature_batch)
        tampered[index] = _tamper_signature(tampered[index], group.order)
        assert not batch_schnorr_verify(tampered)

    def test_rejects_swapped_messages(self, signature_batch):
        swapped = list(signature_batch)
        a, b = swapped[2], swapped[7]
        swapped[2] = (a[0], b[1], a[2])
        swapped[7] = (b[0], a[1], b[2])
        assert not batch_schnorr_verify(swapped)


class TestVerifySignatures:
    def test_per_item_verdicts_isolate_forgeries(self, group, signature_batch):
        tampered = list(signature_batch)
        for index in (1, 8):
            tampered[index] = _tamper_signature(tampered[index], group.order)
        verdicts = verify_signatures(tampered)
        assert verdicts == [index not in (1, 8) for index in range(len(tampered))]

    def test_small_chunks_force_bisection(self, group, signature_batch):
        tampered = list(signature_batch)
        tampered[4] = _tamper_signature(tampered[4], group.order)
        verdicts = verify_signatures(tampered, chunk_size=3)
        assert verdicts == [index != 4 for index in range(len(tampered))]

    def test_process_executor_matches_serial(self, group, signature_batch):
        tampered = list(signature_batch)
        tampered[9] = _tamper_signature(tampered[9], group.order)
        serial = verify_signatures(tampered, executor=SerialExecutor())
        with ProcessExecutor(num_workers=2) as ex:
            parallel = verify_signatures(tampered, executor=ex, chunk_size=4)
        assert serial == parallel == [index != 9 for index in range(len(tampered))]


@pytest.fixture()
def chaum_pedersen_batch(group):
    transcripts = []
    base_h = group.hash_to_element(b"second base")
    for index in range(8):
        witness = group.random_scalar()
        statement = ChaumPedersenStatement(
            base_g=group.generator,
            base_h=base_h,
            value_g=group.power(witness),
            value_h=base_h ** witness,
        )
        transcripts.append(fiat_shamir_prove(statement, witness, context=b"batch-test"))
    return transcripts


class TestBatchChaumPedersen:
    def test_accepts_valid_transcripts(self, chaum_pedersen_batch):
        assert batch_chaum_pedersen_verify(chaum_pedersen_batch)
        assert batch_chaum_pedersen_verify(chaum_pedersen_batch, context=b"batch-test")

    def test_accepts_simulated_transcripts_without_context(self, group):
        # The simulator forges verifying transcripts (that is its purpose);
        # the batch check must accept them exactly like the one-by-one check.
        base_h = group.hash_to_element(b"sim base")
        statement = ChaumPedersenStatement(
            base_g=group.generator,
            base_h=base_h,
            value_g=group.power(5),
            value_h=base_h ** 7,  # no witness exists
        )
        transcripts = [simulate_chaum_pedersen(statement, group.random_scalar()) for _ in range(4)]
        assert batch_chaum_pedersen_verify(transcripts)

    @pytest.mark.parametrize("index", [0, 3, 7])
    def test_rejects_single_tampered_response(self, group, chaum_pedersen_batch, index):
        tampered = list(chaum_pedersen_batch)
        transcript = tampered[index]
        tampered[index] = dataclasses.replace(transcript, response=(transcript.response + 1) % group.order)
        assert not batch_chaum_pedersen_verify(tampered)

    def test_context_mismatch_rejected(self, chaum_pedersen_batch):
        assert not batch_chaum_pedersen_verify(chaum_pedersen_batch, context=b"wrong-context")


@pytest.fixture()
def reencryption_batch(group, elgamal):
    keypair = elgamal.keygen()
    items = []
    for index in range(10):
        message = group.hash_to_element(f"m{index}".encode())
        source = elgamal.encrypt(keypair.public, message)
        randomness = group.random_scalar()
        target = elgamal.reencrypt(keypair.public, source, randomness)
        items.append((source, target, randomness))
    return keypair.public, items


class TestBatchReencryption:
    def test_accepts_valid_openings(self, elgamal, reencryption_batch):
        public_key, items = reencryption_batch
        assert batch_reencryption_verify(elgamal, public_key, items)
        assert batch_reencryption_verify(elgamal, public_key, [])

    @pytest.mark.parametrize("index", [0, 4, 9])
    def test_rejects_wrong_randomness(self, group, elgamal, reencryption_batch, index):
        public_key, items = reencryption_batch
        source, target, randomness = items[index]
        items = list(items)
        items[index] = (source, target, (randomness + 1) % group.order)
        assert not batch_reencryption_verify(elgamal, public_key, items)

    def test_rejects_substituted_target(self, group, elgamal, reencryption_batch):
        public_key, items = reencryption_batch
        source, _, randomness = items[5]
        decoy = elgamal.encrypt(public_key, group.hash_to_element(b"decoy"))
        items = list(items)
        items[5] = (source, decoy, randomness)
        assert not batch_reencryption_verify(elgamal, public_key, items)
