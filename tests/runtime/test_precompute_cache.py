"""Disk persistence of fixed-base tables (process pools / repeated runs)."""

from __future__ import annotations

import json

import pytest

from repro.crypto.modp_group import modp_group_256, testing_group as toy_group
from repro.runtime.precompute import (
    AUTO_BUILD_THRESHOLD,
    FixedBaseTable,
    clear_tables,
    disk_cache_dir,
    disk_cache_stats,
    element_power,
    set_disk_cache,
    warm_fixed_base,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    """Point the disk cache at a per-test directory; restore afterwards."""
    clear_tables()
    previous = set_disk_cache(tmp_path)
    yield tmp_path
    clear_tables()
    set_disk_cache(previous)


@pytest.fixture(scope="module")
def big_group():
    return modp_group_256()


def test_save_and_load_roundtrip(big_group, isolated_cache):
    warmed = warm_fixed_base(big_group.generator)
    assert warmed is not None
    files = list(isolated_cache.glob("table-*.json"))
    assert len(files) == 1

    clear_tables()  # simulate a fresh process
    hits_before, _ = disk_cache_stats()
    loaded = warm_fixed_base(big_group.generator)
    hits_after, _ = disk_cache_stats()
    assert hits_after == hits_before + 1
    for exponent in (0, 1, 7, big_group.order - 1, big_group.order // 3):
        assert loaded.power(exponent) == big_group.generator.exponentiate(exponent)


def test_loaded_table_equals_built_table(big_group):
    built = FixedBaseTable(big_group.generator)
    warm_fixed_base(big_group.generator)
    clear_tables()
    loaded = warm_fixed_base(big_group.generator)
    assert loaded._rows == built._rows
    assert loaded.window_bits == built.window_bits


def test_auto_build_path_also_persists(big_group, isolated_cache):
    base = big_group.hash_to_element(b"hot base")
    for _ in range(AUTO_BUILD_THRESHOLD):
        element_power(base, 3)
    assert list(isolated_cache.glob("table-*.json"))
    clear_tables()
    # The auto-built table reloads from disk on the next threshold crossing.
    hits_before, _ = disk_cache_stats()
    for _ in range(AUTO_BUILD_THRESHOLD):
        assert element_power(base, 5) == base.exponentiate(5)
    assert disk_cache_stats()[0] == hits_before + 1


def test_distinct_keys_per_base_and_window(big_group, isolated_cache):
    warm_fixed_base(big_group.generator, window_bits=5)
    clear_tables()  # the in-memory cache is per-base; force a fresh build
    warm_fixed_base(big_group.generator, window_bits=4)
    warm_fixed_base(big_group.hash_to_element(b"other"), window_bits=5)
    assert len(list(isolated_cache.glob("table-*.json"))) == 3


def test_corrupt_cache_file_falls_back_to_rebuild(big_group, isolated_cache):
    warm_fixed_base(big_group.generator)
    (entry,) = isolated_cache.glob("table-*.json")
    entry.write_bytes(b"not json at all {")
    clear_tables()
    _, misses_before = disk_cache_stats()
    rebuilt = warm_fixed_base(big_group.generator)
    assert disk_cache_stats()[1] == misses_before + 1
    assert rebuilt.power(99) == big_group.generator.exponentiate(99)


def test_mismatched_payload_is_rejected(big_group, isolated_cache):
    warm_fixed_base(big_group.generator)
    (entry,) = isolated_cache.glob("table-*.json")
    payload = json.loads(entry.read_text())
    payload["base"] = "00" * (len(payload["base"]) // 2)  # claims a different base
    entry.write_text(json.dumps(payload))
    clear_tables()
    rebuilt = warm_fixed_base(big_group.generator)  # ignores the lying entry
    assert rebuilt.power(17) == big_group.generator.exponentiate(17)


def test_wrong_shape_payload_is_rejected(big_group, isolated_cache):
    warm_fixed_base(big_group.generator)
    (entry,) = isolated_cache.glob("table-*.json")
    payload = json.loads(entry.read_text())
    payload["rows"] = payload["rows"][:-1]  # truncated table
    entry.write_text(json.dumps(payload))
    clear_tables()
    rebuilt = warm_fixed_base(big_group.generator)
    assert rebuilt.power(23) == big_group.generator.exponentiate(23)
    assert len(json.loads(entry.read_text())["rows"]) > len(payload["rows"])  # re-saved complete


def test_disabled_cache_never_touches_disk(big_group, isolated_cache):
    set_disk_cache(None)
    assert disk_cache_dir() is None
    warm_fixed_base(big_group.generator)
    assert not list(isolated_cache.glob("table-*.json"))


def test_small_groups_never_cached(isolated_cache):
    assert warm_fixed_base(toy_group().generator) is None
    assert not list(isolated_cache.glob("table-*.json"))


def test_unwritable_cache_dir_is_harmless(big_group, tmp_path):
    set_disk_cache(tmp_path / "file-not-dir" / "nested")
    (tmp_path / "file-not-dir").write_text("a plain file blocks mkdir")
    table = warm_fixed_base(big_group.generator)  # build succeeds, save fails quietly
    assert table is not None
    assert table.power(42) == big_group.generator.exponentiate(42)
