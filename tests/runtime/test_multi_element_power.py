"""`multi_element_power`: fixed-base tables folded into multi-exponentiation."""

from __future__ import annotations

import random

import pytest

from repro.crypto.modp_group import modp_group_256, testing_group as toy_group
from repro.runtime.precompute import (
    clear_tables,
    multi_element_power,
    set_precompute_enabled,
    warm_fixed_base,
)


@pytest.fixture(autouse=True)
def fresh_precompute_state():
    clear_tables()
    previous = set_precompute_enabled(True)
    yield
    clear_tables()
    set_precompute_enabled(previous)


@pytest.fixture(scope="module")
def big_group():
    return modp_group_256()


def _naive(group, bases, scalars):
    result = group.identity
    for base, scalar in zip(bases, scalars):
        result = result.operate(base.exponentiate(scalar))
    return result


def _random_terms(group, count, seed):
    rng = random.Random(seed)
    bases = [group.power(rng.randrange(1, group.order)) for _ in range(count)]
    scalars = [rng.randrange(-group.order, 2 * group.order) for _ in range(count)]
    return bases, scalars


class TestMultiElementPower:
    def test_matches_naive_without_tables(self, big_group):
        bases, scalars = _random_terms(big_group, 9, seed=0xA)
        assert multi_element_power(big_group, bases, scalars) == _naive(big_group, bases, scalars)

    def test_matches_naive_with_warmed_tables(self, big_group):
        # The generator and a "public key" are warmed (as election setup
        # does); the remaining one-shot bases share the multi-exp chain.
        public_key = big_group.power(0x5EC0DE)
        warm_fixed_base(big_group.generator)
        warm_fixed_base(public_key)
        bases, scalars = _random_terms(big_group, 6, seed=0xB)
        bases += [big_group.generator, public_key]
        scalars += [12345, -678]
        assert multi_element_power(big_group, bases, scalars) == _naive(big_group, bases, scalars)

    def test_all_bases_table_backed(self, big_group):
        warm_fixed_base(big_group.generator)
        assert multi_element_power(
            big_group, [big_group.generator], [4242]
        ) == big_group.generator.exponentiate(4242)

    def test_empty_terms_yield_identity(self, big_group):
        assert multi_element_power(big_group, [], []) == big_group.identity

    def test_length_mismatch_raises(self, big_group):
        with pytest.raises(ValueError):
            multi_element_power(big_group, [big_group.generator], [1, 2])

    def test_toy_group_stays_on_reference_path(self):
        group = toy_group()
        bases, scalars = _random_terms(group, 5, seed=0xC)
        assert multi_element_power(group, bases, scalars) == _naive(group, bases, scalars)

    def test_disabled_precompute_still_correct(self, big_group):
        warm_fixed_base(big_group.generator)
        set_precompute_enabled(False)
        bases, scalars = _random_terms(big_group, 4, seed=0xD)
        bases.append(big_group.generator)
        scalars.append(99)
        assert multi_element_power(big_group, bases, scalars) == _naive(big_group, bases, scalars)
