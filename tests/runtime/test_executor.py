"""Executor backends: ordering, equivalence, error propagation, specs."""

from __future__ import annotations

import pytest

from repro.runtime.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_workers,
    chunk_evenly,
    executor_from_spec,
    get_default_executor,
    resolve_executor,
    set_default_executor,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _explode(x):
    if x == 13:
        raise ValueError("unlucky")
    return x


@pytest.fixture(params=["serial", "thread", "process"])
def executor(request):
    if request.param == "serial":
        yield SerialExecutor()
    elif request.param == "thread":
        with ThreadExecutor(num_workers=2) as ex:
            yield ex
    else:
        with ProcessExecutor(num_workers=2) as ex:
            yield ex


class TestBackends:
    def test_map_matches_serial_reference(self, executor):
        items = list(range(37))
        assert executor.map(_square, items) == [x * x for x in items]

    def test_starmap_matches_serial_reference(self, executor):
        items = [(a, a + 1) for a in range(23)]
        assert executor.starmap(_add, items) == [a + b for a, b in items]

    def test_empty_input(self, executor):
        assert executor.map(_square, []) == []
        assert executor.starmap(_add, []) == []

    def test_single_item(self, executor):
        assert executor.map(_square, [7]) == [49]

    def test_explicit_chunksize(self, executor):
        items = list(range(10))
        assert executor.map(_square, items, chunksize=3) == [x * x for x in items]

    def test_worker_exception_propagates(self, executor):
        with pytest.raises(ValueError, match="unlucky"):
            executor.map(_explode, list(range(20)))

    def test_close_is_idempotent(self, executor):
        executor.close()
        executor.close()


class TestChunking:
    def test_concatenation_restores_order(self):
        items = list(range(101))
        for num_chunks in (1, 2, 3, 7, 50, 101, 500):
            chunks = chunk_evenly(items, num_chunks)
            assert [x for chunk in chunks for x in chunk] == items

    def test_chunks_are_balanced(self):
        chunks = chunk_evenly(list(range(10)), 3)
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert all(chunk for chunk in chunks)

    def test_never_more_chunks_than_items(self):
        assert len(chunk_evenly([1, 2], 8)) == 2


class TestSpecs:
    def test_serial_spec(self):
        assert isinstance(executor_from_spec("serial"), SerialExecutor)

    def test_thread_spec_with_count(self):
        ex = executor_from_spec("thread:3")
        assert isinstance(ex, ThreadExecutor)
        assert ex.num_workers == 3

    def test_process_spec_defaults_to_available_workers(self):
        ex = executor_from_spec("process")
        assert isinstance(ex, ProcessExecutor)
        assert ex.num_workers == available_workers()

    def test_spec_is_case_insensitive(self):
        assert isinstance(executor_from_spec("  Thread:2 "), ThreadExecutor)

    @pytest.mark.parametrize("spec", ["gpu", "thread:zero", "process:0", "serial:2"])
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ValueError):
            executor_from_spec(spec)


class TestDefaultExecutor:
    def test_default_is_serial(self):
        assert isinstance(get_default_executor(), SerialExecutor)

    def test_resolve_prefers_explicit(self):
        explicit = SerialExecutor()
        assert resolve_executor(explicit) is explicit
        assert resolve_executor(None) is get_default_executor()

    def test_set_and_restore(self):
        replacement = ThreadExecutor(num_workers=2)
        previous = set_default_executor(replacement)
        try:
            assert get_default_executor() is replacement
            assert resolve_executor(None) is replacement
        finally:
            set_default_executor(previous)
            replacement.close()
        assert get_default_executor() is previous


def test_available_workers_positive():
    assert available_workers() >= 1
