"""Unit tests for the streaming shard pipeline scheduler.

The CI stress job reruns this module with randomized
``REPRO_PIPELINE_SHARD_SIZE`` / ``REPRO_PIPELINE_QUEUE_DEPTH`` to shake out
schedule-dependent bugs (in the stateless-model-checking spirit: explore many
interleavings systematically rather than by luck of one scheduler).
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.runtime.executor import SerialExecutor, ThreadExecutor
from repro.runtime.pipeline import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_SHARD_SIZE,
    MapStage,
    PipelineSpec,
    Shard,
    ShardReassembler,
    Stage,
    StopPipeline,
    StreamPipeline,
    iter_shards,
    pipeline_from_spec,
    shard_boundaries,
)

#: Randomized by the CI stress job; the defaults keep local runs deterministic.
SHARD_SIZE = int(os.environ.get("REPRO_PIPELINE_SHARD_SIZE", "3"))
QUEUE_DEPTH = int(os.environ.get("REPRO_PIPELINE_QUEUE_DEPTH", "2"))


def _double(x):
    return 2 * x


def _add_one(x):
    return x + 1


def _collect(shards):
    return [item for shard in shards for item in shard.items]


# ----------------------------------------------------------------- sharding


def test_shard_boundaries_cover_stream():
    assert shard_boundaries(10, 3) == [(0, 3), (3, 6), (6, 9), (9, 10)]
    assert shard_boundaries(0, 4) == []
    assert shard_boundaries(3, 10) == [(0, 3)]
    with pytest.raises(ValueError):
        shard_boundaries(5, 0)


def test_iter_shards_roundtrip():
    items = list(range(23))
    shards = list(iter_shards(items, SHARD_SIZE))
    assert [shard.index for shard in shards] == list(range(len(shards)))
    assert _collect(shards) == items
    assert all(len(shard) <= SHARD_SIZE for shard in shards)


def test_reassembler_releases_in_order():
    boundaries = shard_boundaries(7, 3)
    reassembler = ShardReassembler(boundaries)
    released = []
    for position in reversed(range(7)):  # worst case: everything arrives backwards
        released.extend(reassembler.add(position, position * 10))
    assert [shard.index for shard in released] == [0, 1, 2]
    assert _collect(released) == [position * 10 for position in range(7)]
    assert reassembler.pending_shards == 0


def test_reassembler_partial_pending():
    reassembler = ShardReassembler(shard_boundaries(4, 2))
    assert reassembler.add(3, "d") == []  # shard 1 incomplete, shard 0 missing
    assert reassembler.add(2, "c") == []  # shard 1 complete but shard 0 blocks it
    assert reassembler.pending_shards == 2
    assert reassembler.add(0, "a") == []
    released = reassembler.add(1, "b")
    assert [shard.index for shard in released] == [0, 1]


# ----------------------------------------------------------------- pipelines


def test_map_stages_preserve_order():
    items = list(range(100))
    stages = [MapStage(_double), MapStage(_add_one), MapStage(_double)]
    shards = StreamPipeline(stages, queue_depth=QUEUE_DEPTH).run(iter_shards(items, SHARD_SIZE))
    assert _collect(shards) == [(2 * x + 1) * 2 for x in items]
    assert [shard.index for shard in shards] == list(range(len(shards)))


def test_map_stage_with_thread_executor():
    items = list(range(60))
    with ThreadExecutor(num_workers=3) as executor:
        shards = StreamPipeline(
            [MapStage(_double, executor=executor)], queue_depth=QUEUE_DEPTH
        ).run(iter_shards(items, SHARD_SIZE))
    assert _collect(shards) == [2 * x for x in items]


def test_pipeline_is_single_use():
    pipeline = StreamPipeline([MapStage(_double)])
    pipeline.run(iter_shards([1, 2, 3], 2))
    with pytest.raises(RuntimeError):
        pipeline.run(iter_shards([1], 1))


def test_backpressure_bounds_buffering():
    """A slow sink stage must throttle the source via the bounded queues."""
    produced = []

    def source():
        for index, shard in enumerate(iter_shards(list(range(40)), 2)):
            produced.append(index)
            yield shard

    class SlowStage(Stage):
        name = "slow"

        def __init__(self):
            self.consumed = 0
            self.max_lead = 0

        def process(self, shard):
            self.consumed += 1
            self.max_lead = max(self.max_lead, len(produced) - self.consumed)
            time.sleep(0.002)
            yield shard

    stage = SlowStage()
    StreamPipeline([stage], queue_depth=2).run(source())
    assert stage.consumed == 20
    # The source can run ahead by at most the queue bound plus the shards
    # in-hand (one in the source thread, one in the stage thread).
    assert stage.max_lead <= 2 + 2


class _FailingStage(Stage):
    name = "failing"

    def __init__(self, fail_at_index):
        self.fail_at_index = fail_at_index

    def process(self, shard):
        if shard.index == self.fail_at_index:
            raise ValueError(f"injected failure at shard {shard.index}")
        yield shard


def test_stage_error_propagates_unchanged():
    with pytest.raises(ValueError, match="injected failure at shard 2"):
        StreamPipeline([MapStage(_double), _FailingStage(2)], queue_depth=QUEUE_DEPTH).run(
            iter_shards(list(range(30)), 3)
        )


def test_stage_error_joins_all_threads():
    before = threading.active_count()
    with pytest.raises(ValueError):
        StreamPipeline([_FailingStage(0), MapStage(_double)], queue_depth=1).run(
            iter_shards(list(range(50)), 1)
        )
    deadline = time.time() + 5
    while threading.active_count() > before and time.time() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= before


def test_source_error_propagates():
    def broken_source():
        yield Shard(0, [1, 2])
        raise OSError("ledger read failed")

    with pytest.raises(OSError, match="ledger read failed"):
        StreamPipeline([MapStage(_double)], queue_depth=QUEUE_DEPTH).run(broken_source())


def test_consumer_error_propagates():
    def consume(shard):
        raise KeyError("sink exploded")

    with pytest.raises(KeyError):
        StreamPipeline([MapStage(_double)], queue_depth=QUEUE_DEPTH).run(
            iter_shards(list(range(10)), 2), consume=consume
        )


def test_stop_pipeline_cancels_remaining_work():
    seen = []

    def consume(shard):
        seen.append(shard.index)
        raise StopPipeline()

    collected = StreamPipeline([MapStage(_double)], queue_depth=1).run(
        iter_shards(list(range(100)), 1), consume=consume
    )
    assert seen == [0]
    assert len(collected) == 1
    # Bounded queues mean cancellation leaves most of the stream unprocessed.
    assert len(collected) < 100


class _FinalizingStage(Stage):
    """Emits its shards untouched; finalize waits for the downstream signal."""

    name = "finalizing"

    def __init__(self, downstream_done: threading.Event):
        self.downstream_done = downstream_done
        self.finalized_after_downstream = False

    def process(self, shard):
        yield shard

    def finalize(self):
        # If finalize ran before the end-of-stream marker reached downstream,
        # this would deadlock; the wait timeout turns that into a failure.
        self.finalized_after_downstream = self.downstream_done.wait(timeout=5)


class _SignallingStage(Stage):
    name = "signalling"

    def __init__(self, done: threading.Event):
        self.done = done

    def process(self, shard):
        yield shard

    def finish(self):
        self.done.set()
        return ()


def test_finalize_overlaps_downstream():
    """finalize() must run after downstream already has the whole stream."""
    done = threading.Event()
    upstream = _FinalizingStage(done)
    downstream = _SignallingStage(done)
    shards = StreamPipeline([upstream, downstream], queue_depth=QUEUE_DEPTH).run(
        iter_shards(list(range(12)), 3)
    )
    assert _collect(shards) == list(range(12))
    assert upstream.finalized_after_downstream


def test_stateful_stage_with_tail_emission():
    class Batcher(Stage):
        """Re-batches items into pairs, emitting the remainder at finish()."""

        name = "batcher"

        def __init__(self):
            self._buffer = []
            self._emitted = 0

        def _drain(self):
            while len(self._buffer) >= 2:
                pair, self._buffer = self._buffer[:2], self._buffer[2:]
                yield Shard(self._emitted, pair)
                self._emitted += 1

        def process(self, shard):
            self._buffer.extend(shard.items)
            yield from self._drain()

        def finish(self):
            if self._buffer:
                yield Shard(self._emitted, list(self._buffer))

    shards = StreamPipeline([Batcher()], queue_depth=QUEUE_DEPTH).run(iter_shards(list(range(11)), 3))
    assert _collect(shards) == list(range(11))
    assert [len(shard) for shard in shards] == [2, 2, 2, 2, 2, 1]


def test_randomized_schedules_stay_deterministic():
    """Many random shard/queue geometries must all produce the serial answer."""
    rng = random.Random(int(os.environ.get("REPRO_STRESS_ITERATION", "0")) + 1234)
    items = list(range(200))
    expected = [(2 * x + 1) for x in items]
    for _ in range(5):
        shard_size = rng.randrange(1, 9)
        queue_depth = rng.randrange(1, 5)
        shards = StreamPipeline(
            [MapStage(_double), MapStage(_add_one)], queue_depth=queue_depth
        ).run(iter_shards(items, shard_size))
        assert _collect(shards) == expected, f"shard={shard_size} depth={queue_depth}"


# ----------------------------------------------------------------- spec parsing


def test_pipeline_spec_defaults():
    assert pipeline_from_spec(None) == PipelineSpec(streaming=False)
    assert pipeline_from_spec("serial").streaming is False
    assert pipeline_from_spec("off").streaming is False


def test_pipeline_spec_streaming_forms():
    spec = pipeline_from_spec("stream")
    assert spec == PipelineSpec(True, DEFAULT_SHARD_SIZE, DEFAULT_QUEUE_DEPTH)
    assert pipeline_from_spec("stream:64") == PipelineSpec(True, 64, DEFAULT_QUEUE_DEPTH)
    assert pipeline_from_spec("stream:64:8") == PipelineSpec(True, 64, 8)


@pytest.mark.parametrize("bad", ["serial:2", "stream:x", "stream:0", "stream:4:0", "warp"])
def test_pipeline_spec_rejects_garbage(bad):
    with pytest.raises(ValueError):
        pipeline_from_spec(bad)


def test_pipeline_requires_stages_and_depth():
    with pytest.raises(ValueError):
        StreamPipeline([])
    with pytest.raises(ValueError):
        StreamPipeline([MapStage(_double)], queue_depth=0)


def test_executor_warm_is_safe():
    SerialExecutor().warm()  # no-op
    with ThreadExecutor(num_workers=2) as executor:
        executor.warm()
        assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
