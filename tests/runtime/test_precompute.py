"""Fixed-base precomputation: correctness, auto-build policy, transparency."""

from __future__ import annotations

import random

import pytest

from repro.crypto.modp_group import modp_group_256, testing_group as toy_group
from repro.runtime import precompute
from repro.runtime.precompute import (
    AUTO_BUILD_THRESHOLD,
    FixedBaseTable,
    clear_tables,
    element_power,
    num_cached_tables,
    set_precompute_enabled,
    warm_fixed_base,
)


@pytest.fixture(autouse=True)
def fresh_precompute_state():
    """Isolate the global table cache and enable flag per test."""
    clear_tables()
    previous = set_precompute_enabled(True)
    yield
    clear_tables()
    set_precompute_enabled(previous)


@pytest.fixture(scope="module")
def big_group():
    return modp_group_256()


class TestFixedBaseTable:
    def test_matches_square_and_multiply(self, big_group):
        rng = random.Random(0xF1BA)
        table = FixedBaseTable(big_group.generator)
        for _ in range(16):
            exponent = rng.randrange(big_group.order)
            assert table.power(exponent) == big_group.generator.exponentiate(exponent)

    def test_edge_exponents(self, big_group):
        table = FixedBaseTable(big_group.generator)
        assert table.power(0) == big_group.identity
        assert table.power(1) == big_group.generator
        assert table.power(big_group.order) == big_group.identity
        assert table.power(big_group.order - 1) == big_group.generator.exponentiate(-1)
        assert table.power(-5) == big_group.generator.exponentiate(-5)

    def test_arbitrary_base(self, big_group):
        base = big_group.hash_to_element(b"some hot base")
        table = FixedBaseTable(base, window_bits=4)
        for exponent in (2, 3, 12345, big_group.order // 3):
            assert table.power(exponent) == base.exponentiate(exponent)

    def test_works_on_toy_group_when_built_directly(self):
        group = toy_group()
        table = FixedBaseTable(group.generator)
        for exponent in (0, 1, 2, 97, group.order - 1):
            assert table.power(exponent) == group.generator.exponentiate(exponent)

    def test_rejects_zero_window(self, big_group):
        with pytest.raises(ValueError):
            FixedBaseTable(big_group.generator, window_bits=0)


class TestTransparentCache:
    def test_auto_build_after_threshold(self, big_group):
        base = big_group.hash_to_element(b"auto-build")
        assert num_cached_tables() == 0
        for index in range(AUTO_BUILD_THRESHOLD + 2):
            assert element_power(base, 41 + index) == base.exponentiate(41 + index)
        assert num_cached_tables() == 1

    def test_warm_builds_immediately_and_results_match(self, big_group):
        table = warm_fixed_base(big_group.generator)
        assert table is not None
        assert num_cached_tables() == 1
        assert element_power(big_group.generator, 99) == big_group.generator.exponentiate(99)

    def test_small_groups_are_left_alone(self):
        group = toy_group()
        assert warm_fixed_base(group.generator) is None
        assert element_power(group.generator, 123) == group.generator.exponentiate(123)
        assert num_cached_tables() == 0

    def test_disabled_flag_bypasses_tables(self, big_group):
        set_precompute_enabled(False)
        assert warm_fixed_base(big_group.generator) is None
        for _ in range(AUTO_BUILD_THRESHOLD + 2):
            element_power(big_group.generator, 7)
        assert num_cached_tables() == 0

    def test_full_cache_evicts_least_recently_used(self, big_group, monkeypatch):
        monkeypatch.setattr(precompute, "MAX_TABLES", 2)
        bases = [big_group.hash_to_element(bytes([index])) for index in range(3)]
        for base in bases:
            assert warm_fixed_base(base) is not None
        assert num_cached_tables() == 2
        # The oldest base fell out but still computes correctly (rebuild path).
        for base in bases:
            assert element_power(base, 321) == base.exponentiate(321)
        # Touching a cached base protects it from the next eviction.
        warm_fixed_base(bases[1])
        warm_fixed_base(big_group.hash_to_element(b"newcomer"))
        assert element_power(bases[1], 55) == bases[1].exponentiate(55)
        assert num_cached_tables() == 2

    def test_group_power_hook_uses_table(self, big_group):
        warm_fixed_base(big_group.generator)
        # group.power goes through the installed accelerator hook; the result
        # must be indistinguishable from the reference path.
        for exponent in (5, 2**200 + 3, big_group.order - 2):
            assert big_group.power(exponent) == big_group.generator.exponentiate(exponent)

    def test_elgamal_encrypt_decrypt_with_tables(self, big_group):
        from repro.crypto.elgamal import ElGamal

        elgamal = ElGamal(big_group)
        keypair = elgamal.keygen()
        warm_fixed_base(keypair.public)
        message = big_group.hash_to_element(b"hello tables")
        ciphertext = elgamal.encrypt(keypair.public, message)
        assert elgamal.decrypt(keypair.secret, ciphertext) == message
        refreshed = elgamal.reencrypt(keypair.public, ciphertext)
        assert elgamal.decrypt(keypair.secret, refreshed) == message

    def test_encrypt_identical_with_and_without_tables(self, big_group):
        from repro.crypto.elgamal import ElGamal

        elgamal = ElGamal(big_group)
        keypair = elgamal.keygen(secret=31337)
        message = big_group.hash_to_element(b"determinism")
        randomness = 0xDEADBEEF
        set_precompute_enabled(False)
        reference = elgamal.encrypt(keypair.public, message, randomness=randomness)
        set_precompute_enabled(True)
        warm_fixed_base(keypair.public)
        warm_fixed_base(big_group.generator)
        accelerated = elgamal.encrypt(keypair.public, message, randomness=randomness)
        assert accelerated == reference
