"""Runtime equivalence: serial, thread, and process backends must be
observationally identical — same `TallyResult` bits, same verification
verdicts — with only the wall clock allowed to differ.

Two levels of guarantee are pinned down:

* **Stage determinism** (no randomness involved): signature filtering, tag
  filtering and vote decryption are deterministic given their inputs, so
  every backend must reproduce the serial output exactly.
* **Whole-pipeline determinism for a fixed randomness tape**: all randomness
  that influences published output is drawn serially in the calling thread
  (shuffle plans, tagging secrets), so with a seeded scalar/permutation
  source the full `TallyResult` is bit-identical across backends.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.group import Group
from repro.crypto.tagging import TaggingAuthority
from repro.election import ElectionConfig, VotegralElection
from repro.runtime.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.tally import mixnet
from repro.tally.decrypt import decrypt_votes
from repro.tally.filter import filter_ballots
from repro.tally.pipeline import TallyPipeline, verify_tally

NUM_VOTERS = 5
NUM_OPTIONS = 2
NUM_MIXERS = 2
PROOF_ROUNDS = 2


@pytest.fixture(scope="module")
def voted_election():
    """One small election, registered and voted, shared by every backend."""
    config = ElectionConfig(
        num_voters=NUM_VOTERS,
        num_options=NUM_OPTIONS,
        num_mixers=NUM_MIXERS,
        proof_rounds=PROOF_ROUNDS,
        fake_credentials_per_voter=1,
    )
    election = VotegralElection(config)
    election.run_setup()
    election.run_registration()
    election.run_voting()
    return election


@pytest.fixture(scope="module")
def backends():
    executors = {
        "serial": SerialExecutor(),
        "thread": ThreadExecutor(num_workers=2),
        "process": ProcessExecutor(num_workers=2),
    }
    yield executors
    for executor in executors.values():
        executor.close()


def _seeded_randomness(monkeypatch, seed: int) -> None:
    """Replace the two randomness sources that shape published output."""
    rng = random.Random(seed)
    monkeypatch.setattr(Group, "random_scalar", lambda self: rng.randrange(1, self.order))
    monkeypatch.setattr(mixnet, "random_permutation", lambda n: rng.sample(range(n), n))


def _run_tally(election, executor, tagging):
    pipeline = TallyPipeline(
        group=election.group,
        authority=election.setup.authority,
        num_mixers=NUM_MIXERS,
        proof_rounds=PROOF_ROUNDS,
        executor=executor,
        tagging=tagging,
    )
    return pipeline.run(election.setup.board, NUM_OPTIONS, election.config.election_id)


class TestFullPipelineBitIdentical:
    def test_all_backends_produce_identical_tally_results(self, voted_election, backends, monkeypatch):
        tagging = TaggingAuthority.create(voted_election.group, voted_election.setup.authority.num_members)
        results = {}
        for name, executor in backends.items():
            with monkeypatch.context() as patch:
                _seeded_randomness(patch, seed=0x5EED)
                results[name] = _run_tally(voted_election, executor, tagging)
        reference = results["serial"]
        assert reference.num_counted == NUM_VOTERS
        for name, result in results.items():
            assert result == reference, f"{name} tally differs from serial reference"

    def test_every_backend_tally_universally_verifies(self, voted_election, backends):
        tagging = TaggingAuthority.create(voted_election.group, voted_election.setup.authority.num_members)
        for name, executor in backends.items():
            result = _run_tally(voted_election, executor, tagging)
            assert verify_tally(
                voted_election.group,
                voted_election.setup.authority,
                voted_election.setup.board,
                result,
                voted_election.config.election_id,
                executor=executor,
            ), f"{name} tally failed universal verification"
            assert sum(result.counts.values()) == NUM_VOTERS


class TestStageDeterminism:
    @pytest.fixture(scope="class")
    def mixed_stage_inputs(self, voted_election):
        """Mix once (randomly); the downstream stages are then deterministic."""
        election = voted_election
        authority = election.setup.authority
        pipeline = TallyPipeline(
            group=election.group, authority=authority, num_mixers=NUM_MIXERS, proof_rounds=PROOF_ROUNDS
        )
        result = pipeline.run(election.setup.board, NUM_OPTIONS, election.config.election_id)
        mixed_pairs = [(item[0], item[1]) for item in result.ballot_cascade.outputs]
        mixed_registrations = [item[0] for item in result.registration_cascade.outputs]
        tagging = TaggingAuthority.create(election.group, authority.num_members)
        return authority, tagging, mixed_pairs, mixed_registrations, result

    def test_valid_ballots_identical(self, voted_election, backends):
        election = voted_election
        pipeline = TallyPipeline(group=election.group, authority=election.setup.authority)
        reference = None
        for executor in backends.values():
            records = pipeline._valid_ballots(election.setup.board, election.config.election_id, executor=executor)
            if reference is None:
                reference = records
            assert records == reference

    def test_filter_ballots_identical(self, backends, mixed_stage_inputs):
        authority, tagging, mixed_pairs, mixed_registrations, _ = mixed_stage_inputs
        reference = None
        for executor in backends.values():
            outcome = filter_ballots(
                authority, tagging, mixed_pairs, mixed_registrations, verify=False, executor=executor
            )
            if reference is None:
                reference = outcome
            assert outcome == reference

    def test_decrypt_votes_identical(self, backends, mixed_stage_inputs):
        authority, _, _, _, result = mixed_stage_inputs
        reference = None
        for executor in backends.values():
            votes = decrypt_votes(authority, result.filter_result.counted, NUM_OPTIONS, verify=False, executor=executor)
            if reference is None:
                reference = votes
            assert votes == reference


class TestTamperedCascadesRejected:
    def test_batched_cascade_verification_rejects_tampering(self, voted_election, backends):
        """Swapping two mixed outputs must fail verification on every backend,
        with the batched openings check and with the exact reference check.

        Cut-and-choose soundness is probabilistic (an output swap verifies with
        probability ~2^-2R: the re-derived coins must match the recorded flags
        and every matched round must open the input side), so this test runs
        more shadow rounds than the shared PROOF_ROUNDS to push the false-accept
        rate below flakiness range (~2^-12).
        """
        election = voted_election
        authority = election.setup.authority
        pipeline = TallyPipeline(
            group=election.group, authority=authority, num_mixers=NUM_MIXERS, proof_rounds=6
        )
        result = pipeline.run(election.setup.board, NUM_OPTIONS, election.config.election_id)

        stages = list(result.ballot_cascade.stages)
        last = stages[-1]
        outputs = list(last.outputs)
        outputs[0], outputs[1] = outputs[1], outputs[0]
        stages[-1] = mixnet.TupleShuffle(outputs=outputs, rounds=last.rounds)
        forged = mixnet.TupleCascade(stages=stages)

        valid_records = pipeline._valid_ballots(election.setup.board, election.config.election_id)
        from repro.crypto.elgamal import ElGamalCiphertext

        ballot_inputs = [
            (
                ElGamalCiphertext(record.ciphertext_c1, record.ciphertext_c2),
                pipeline.elgamal.encrypt(authority.public_key, record.credential_public_key, randomness=0),
            )
            for record in valid_records
        ]
        for name, executor in backends.items():
            for batch in (True, False):
                assert not mixnet.verify_tuple_cascade(
                    pipeline.elgamal, authority.public_key, ballot_inputs, forged, executor=executor, batch=batch
                ), f"forged cascade accepted ({name}, batch={batch})"
        assert mixnet.verify_tuple_cascade(
            pipeline.elgamal, authority.public_key, ballot_inputs, result.ballot_cascade
        )
