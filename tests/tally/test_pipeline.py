"""The tally pipeline and universal verification."""

import pytest

from repro.errors import TallyError
from repro.registration.protocol import RegistrationSession
from repro.registration.voter import Voter
from repro.tally.decrypt import aggregate, decrypt_votes
from repro.tally.pipeline import TallyPipeline, verify_tally
from repro.voting.client import VotingClient


def _register_and_vote(setup, votes, fake_votes=None):
    """Register each voter and cast their real (and optional fake) ballots."""
    session = RegistrationSession(setup=setup)
    clients = {}
    for voter_id in votes:
        voter = Voter(voter_id, num_fake_credentials=1)
        outcome = session.register(voter)
        client = VotingClient(
            group=setup.group, board=setup.board, authority_public_key=setup.authority_public_key
        )
        for report in outcome.activation_reports:
            client.add_credential(report.credential)
        clients[voter_id] = client
    num_options = max(votes.values()) + 1 if votes else 2
    for voter_id, choice in votes.items():
        clients[voter_id].cast_real(choice, num_options)
    for voter_id, choice in (fake_votes or {}).items():
        clients[voter_id].cast_fake(choice, num_options)
    return clients, num_options


class TestDecryptHelpers:
    def test_decrypt_and_aggregate(self, group, elgamal, dkg):
        ciphertexts = [elgamal.encrypt_int(dkg.public_key, value) for value in (0, 1, 1)]
        votes = decrypt_votes(dkg, ciphertexts, num_options=2, verify=False)
        assert aggregate(votes, 2) == {0: 1, 1: 2}

    def test_invalid_plaintext_raises(self, group, elgamal, dkg):
        bogus = [elgamal.encrypt(dkg.public_key, group.power(500))]
        with pytest.raises(TallyError):
            decrypt_votes(dkg, bogus, num_options=2, verify=False)


class TestTallyPipeline:
    def test_only_real_votes_counted(self, small_setup):
        votes = {"alice": 1, "bob": 0, "carol": 1}
        fake_votes = {"alice": 0, "bob": 1}
        _register_and_vote(small_setup, votes, fake_votes)
        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.counts == {0: 1, 1: 2}
        assert result.num_counted == 3
        assert result.num_discarded == 2

    def test_tally_without_registrations_raises(self, small_setup):
        pipeline = TallyPipeline(small_setup.group, small_setup.authority)
        with pytest.raises(TallyError):
            pipeline.run(small_setup.board, num_options=2)

    def test_revote_with_same_credential_keeps_last(self, small_setup):
        votes = {"alice": 0}
        clients, num_options = _register_and_vote(small_setup, votes)
        clients["alice"].cast_real(1, 2)  # the voter changes their mind
        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.counts == {0: 0, 1: 1}

    def test_universal_verification_accepts_honest_tally(self, small_setup):
        _register_and_vote(small_setup, {"alice": 1, "bob": 0})
        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=4)
        result = pipeline.run(small_setup.board, num_options=2)
        assert verify_tally(small_setup.group, small_setup.authority, small_setup.board, result)

    def test_universal_verification_rejects_tampered_counts(self, small_setup):
        _register_and_vote(small_setup, {"alice": 1, "bob": 0})
        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=4)
        result = pipeline.run(small_setup.board, num_options=2)
        result.counts[1] += 5
        assert not verify_tally(small_setup.group, small_setup.authority, small_setup.board, result)

    def test_winner_helper(self, small_setup):
        _register_and_vote(small_setup, {"alice": 1, "bob": 1, "carol": 0})
        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.winner() == 1

    def test_unsigned_ballot_ignored(self, group, small_setup):
        from repro.crypto.elgamal import ElGamal
        from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
        from repro.ledger.bulletin_board import BallotRecord

        _register_and_vote(small_setup, {"alice": 0})
        rogue = schnorr_keygen(group)
        ciphertext = ElGamal(group).encrypt_int(small_setup.authority_public_key, 1)
        small_setup.board.post_ballot(
            BallotRecord(
                credential_public_key=rogue.public,
                ciphertext_c1=ciphertext.c1,
                ciphertext_c2=ciphertext.c2,
                signature=schnorr_sign(rogue, b"not the ballot message"),
            )
        )
        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.num_valid_ballots == 1
        assert result.counts == {0: 1, 1: 0}

    def test_unregistered_credential_ballot_discarded(self, group, small_setup):
        """A well-signed ballot from a credential never issued by the registrar is dropped."""
        from repro.registration.protocol import RegistrationSession
        from repro.voting.ballot import make_ballot
        from repro.crypto.schnorr import schnorr_keygen

        _register_and_vote(small_setup, {"alice": 0})
        rogue = schnorr_keygen(group)
        ballot = make_ballot(group, small_setup.authority_public_key, rogue, 1, 2)
        small_setup.board.post_ballot(ballot.to_record())
        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.counts == {0: 1, 1: 0}
        assert result.num_discarded >= 1
