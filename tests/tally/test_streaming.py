"""Pipelined-vs-serial equality for the streaming tally.

The streaming schedule must be *bit-for-bit* identical to the serial
reference in everything published — per-candidate counts, both mix cascades
with their shadow-mix proofs, the filter transcript, the decrypted vote list
— across Serial/Thread/Process executors and Memory/SQLite board backends.
The determinism argument is the randomness-tape discipline (every draw that
shapes output happens in the calling thread, in the same order on both
paths); these tests pin it down by seeding the tape and comparing whole
:class:`TallyResult` objects.

Failure paths are covered too: a mixer dying mid-stream must propagate its
error promptly (no hang, no partial result), and streaming verification must
cancel outstanding checks at the first failure.

The CI stress job reruns this module with randomized
``REPRO_PIPELINE_SHARD_SIZE`` / ``REPRO_PIPELINE_QUEUE_DEPTH``.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.crypto.elgamal import ElGamal
from repro.crypto.group import Group
from repro.crypto.tagging import TaggingAuthority
from repro.election import ElectionConfig, VotegralElection
from repro.runtime.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.runtime.pipeline import PipelineSpec
from repro.tally import mixnet
from repro.tally.mixnet import (
    TupleCascade,
    streaming_tuple_mix_cascade,
    streaming_verify_tuple_cascade,
    tuple_mix_cascade,
    verify_tuple_cascade,
)
from repro.tally.pipeline import TallyPipeline, verify_tally

NUM_VOTERS = 5
NUM_OPTIONS = 2
NUM_MIXERS = 3
PROOF_ROUNDS = 2

SHARD_SIZE = int(os.environ.get("REPRO_PIPELINE_SHARD_SIZE", "2"))
QUEUE_DEPTH = int(os.environ.get("REPRO_PIPELINE_QUEUE_DEPTH", "2"))

STREAM_SPEC = PipelineSpec(streaming=True, shard_size=SHARD_SIZE, queue_depth=QUEUE_DEPTH)


def _seeded_randomness(monkeypatch, seed: int) -> None:
    """Replace the two randomness sources that shape published output."""
    rng = random.Random(seed)
    monkeypatch.setattr(Group, "random_scalar", lambda self: rng.randrange(1, self.order))
    monkeypatch.setattr(mixnet, "random_permutation", lambda n: rng.sample(range(n), n))


@pytest.fixture(scope="module")
def voted_election():
    """One small election, registered and voted, shared by every schedule."""
    config = ElectionConfig(
        num_voters=NUM_VOTERS,
        num_options=NUM_OPTIONS,
        num_mixers=NUM_MIXERS,
        proof_rounds=PROOF_ROUNDS,
        fake_credentials_per_voter=1,
    )
    election = VotegralElection(config)
    election.run_setup()
    election.run_registration()
    election.run_voting()
    return election


@pytest.fixture(scope="module")
def backends():
    executors = {
        "serial": SerialExecutor(),
        "thread": ThreadExecutor(num_workers=2),
        "process": ProcessExecutor(num_workers=2),
    }
    yield executors
    for executor in executors.values():
        executor.close()


def _run_tally(election, executor, tagging, pipeline=None):
    return TallyPipeline(
        group=election.group,
        authority=election.setup.authority,
        num_mixers=NUM_MIXERS,
        proof_rounds=PROOF_ROUNDS,
        executor=executor,
        tagging=tagging,
        pipeline=pipeline,
    ).run(election.setup.board, NUM_OPTIONS, election.config.election_id)


# ------------------------------------------------------------------ cascade


def _cascade_inputs(group, count=9):
    elgamal = ElGamal(group)
    secret = group.random_scalar()
    public_key = group.power(secret)
    inputs = [
        (elgamal.encrypt(public_key, group.power(i + 1)), elgamal.encrypt(public_key, group.power(i + 2)))
        for i in range(count)
    ]
    return elgamal, public_key, inputs


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_streaming_cascade_bit_identical(monkeypatch, voted_election, backends, backend):
    group = voted_election.group
    elgamal, public_key, inputs = _cascade_inputs(group)

    _seeded_randomness(monkeypatch, 41)
    serial = tuple_mix_cascade(elgamal, public_key, inputs, NUM_MIXERS, PROOF_ROUNDS)
    _seeded_randomness(monkeypatch, 41)
    streamed = streaming_tuple_mix_cascade(
        elgamal, public_key, inputs, NUM_MIXERS, PROOF_ROUNDS,
        executor=backends[backend], pipeline=STREAM_SPEC,
    )
    assert streamed == serial
    assert verify_tuple_cascade(elgamal, public_key, inputs, streamed)
    assert streaming_verify_tuple_cascade(
        elgamal, public_key, inputs, serial, executor=backends[backend], pipeline=STREAM_SPEC
    )


def test_streaming_cascade_empty_and_single():
    group = VotegralElection(ElectionConfig(num_voters=1)).group
    elgamal, public_key, inputs = _cascade_inputs(group, count=1)
    streamed = streaming_tuple_mix_cascade(elgamal, public_key, inputs, 2, PROOF_ROUNDS, pipeline=STREAM_SPEC)
    assert verify_tuple_cascade(elgamal, public_key, inputs, streamed)
    empty = streaming_tuple_mix_cascade(elgamal, public_key, [], 2, PROOF_ROUNDS, pipeline=STREAM_SPEC)
    assert empty.outputs == []


# ------------------------------------------------------------------ full tally


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_streamed_tally_bit_identical(monkeypatch, voted_election, backends, backend):
    group = voted_election.group
    tagging = TaggingAuthority.create(group, voted_election.setup.authority.num_members)

    _seeded_randomness(monkeypatch, 97)
    reference = _run_tally(voted_election, SerialExecutor(), tagging, pipeline=None)
    _seeded_randomness(monkeypatch, 97)
    streamed = _run_tally(voted_election, backends[backend], tagging, pipeline=STREAM_SPEC)

    assert streamed == reference  # counts, cascades+proofs, filter transcript, votes
    assert verify_tally(
        group, voted_election.setup.authority, voted_election.setup.board, streamed,
        voted_election.config.election_id,
    )
    assert verify_tally(
        group, voted_election.setup.authority, voted_election.setup.board, reference,
        voted_election.config.election_id, executor=backends[backend], pipeline=STREAM_SPEC,
    )


def test_streamed_tally_on_sqlite_board(monkeypatch, tmp_path):
    """Streaming over the persistent backend: same result, chains intact."""
    config = ElectionConfig(
        num_voters=4,
        num_mixers=2,
        proof_rounds=2,
        board_spec=f"sqlite:{tmp_path / 'board.db'}",
    )
    election = VotegralElection(config)
    election.run_setup()
    election.run_registration()
    election.run_voting(rng=random.Random(5))
    tagging = TaggingAuthority.create(election.group, election.setup.authority.num_members)

    _seeded_randomness(monkeypatch, 13)
    reference = _run_tally(election, SerialExecutor(), tagging, pipeline=None)
    _seeded_randomness(monkeypatch, 13)
    streamed = _run_tally(election, SerialExecutor(), tagging, pipeline=STREAM_SPEC)

    assert streamed == reference
    # The tally only reads: every hash chain must still verify afterwards.
    assert election.setup.board.verify_all_chains()
    assert verify_tally(
        election.group, election.setup.authority, election.setup.board, streamed,
        config.election_id, pipeline=STREAM_SPEC,
    )
    election.close()


def test_streaming_without_ballots_matches_serial(monkeypatch):
    """Registrations but zero ballots: both schedules publish the same nothing."""
    config = ElectionConfig(num_voters=3, num_mixers=2, proof_rounds=2)
    election = VotegralElection(config)
    election.run_setup()
    election.run_registration()
    tagging = TaggingAuthority.create(election.group, election.setup.authority.num_members)

    _seeded_randomness(monkeypatch, 23)
    reference = _run_tally(election, SerialExecutor(), tagging, pipeline=None)
    _seeded_randomness(monkeypatch, 23)
    streamed = _run_tally(election, SerialExecutor(), tagging, pipeline=STREAM_SPEC)
    assert streamed == reference
    assert streamed.num_counted == 0
    assert streamed.ballot_cascade.stages == []


def test_zero_mixer_cascade_matches_serial(monkeypatch, voted_election):
    """num_mixers=0 publishes an empty cascade — and thus counts nothing —
    identically under both schedules (the streaming path must not feed raw
    ballots straight into tagging)."""
    group = voted_election.group
    tagging = TaggingAuthority.create(group, voted_election.setup.authority.num_members)

    def run(pipeline):
        return TallyPipeline(
            group=group,
            authority=voted_election.setup.authority,
            num_mixers=0,
            proof_rounds=PROOF_ROUNDS,
            tagging=tagging,
            pipeline=pipeline,
        ).run(voted_election.setup.board, NUM_OPTIONS, voted_election.config.election_id)

    _seeded_randomness(monkeypatch, 31)
    reference = run(None)
    _seeded_randomness(monkeypatch, 31)
    streamed = run(STREAM_SPEC)
    assert streamed == reference
    assert streamed.num_counted == 0


def test_config_wires_streaming_end_to_end():
    config = ElectionConfig(
        num_voters=4, num_mixers=2, proof_rounds=2,
        pipeline_spec=f"stream:{SHARD_SIZE}:{QUEUE_DEPTH}",
    )
    with VotegralElection(config) as election:
        report = election.run(rng=random.Random(3))
    assert report.universally_verified
    assert report.counts_match_intent


# ------------------------------------------------------------------ failure paths


class _FlakyExecutor(SerialExecutor):
    """Serial executor that dies after a fixed number of starmap batches."""

    def __init__(self, fail_after: int):
        self.calls = 0
        self.fail_after = fail_after

    def starmap(self, fn, items, chunksize=None):
        self.calls += 1
        if self.calls > self.fail_after:
            raise RuntimeError("injected mixer crash")
        return super().starmap(fn, items, chunksize=chunksize)


def test_midstream_mixer_failure_propagates(voted_election):
    group = voted_election.group
    elgamal, public_key, inputs = _cascade_inputs(group, count=12)
    start = time.perf_counter()
    with pytest.raises(RuntimeError, match="injected mixer crash"):
        streaming_tuple_mix_cascade(
            elgamal, public_key, inputs, NUM_MIXERS, PROOF_ROUNDS,
            executor=_FlakyExecutor(fail_after=3),
            pipeline=PipelineSpec(streaming=True, shard_size=2, queue_depth=1),
        )
    # Cancellation must tear the pipeline down promptly, not hang on queues.
    assert time.perf_counter() - start < 10


def test_midstream_tally_failure_propagates(voted_election):
    tagging = TaggingAuthority.create(
        voted_election.group, voted_election.setup.authority.num_members
    )
    with pytest.raises(RuntimeError, match="injected mixer crash"):
        _run_tally(
            voted_election,
            _FlakyExecutor(fail_after=8),
            tagging,
            pipeline=PipelineSpec(streaming=True, shard_size=1, queue_depth=1),
        )


class _CountingExecutor(SerialExecutor):
    """Counts the items mapped through it (to observe cancelled work)."""

    def __init__(self):
        self.items = 0

    def map(self, fn, items, chunksize=None):
        work = list(items)
        self.items += len(work)
        return super().map(fn, work, chunksize=chunksize)


def test_streaming_verify_cancels_after_first_failure(voted_election):
    group = voted_election.group
    elgamal, public_key, inputs = _cascade_inputs(group, count=6)
    many_mixers = 6
    cascade = tuple_mix_cascade(elgamal, public_key, inputs, many_mixers, PROOF_ROUNDS)
    # Corrupt the transcript: swap two stages so the first stage's proof no
    # longer matches its claimed inputs.
    corrupted = TupleCascade(stages=[cascade.stages[1], cascade.stages[0]] + cascade.stages[2:])
    counting = _CountingExecutor()
    verdict = streaming_verify_tuple_cascade(
        elgamal, public_key, inputs, corrupted,
        executor=counting,
        pipeline=PipelineSpec(streaming=True, shard_size=1, queue_depth=1),
    )
    assert verdict is False
    # First-failure cancellation: with one stage-check per shard (serial
    # executor) and queue depth 1, at most the failing shard, one queued
    # shard and one in-hand shard can ever be verified.
    assert counting.items <= 3 < many_mixers
