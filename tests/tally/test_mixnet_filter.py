"""Tuple mixing, ballot deduplication and tag-based filtering."""

import pytest

from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.crypto.tagging import TaggingAuthority
from repro.ledger.bulletin_board import BallotRecord
from repro.tally.filter import deduplicate_ballots, filter_ballots
from repro.tally.mixnet import (
    TupleShuffle,
    shuffle_tuples_with_proof,
    tuple_mix_cascade,
    verify_tuple_cascade,
    verify_tuple_shuffle,
)


@pytest.fixture()
def pairs(group, elgamal, dkg):
    """(vote, credential) ciphertext pairs for five distinct plaintexts."""
    return [
        (
            elgamal.encrypt(dkg.public_key, group.encode_int(value % 2)),
            elgamal.encrypt(dkg.public_key, group.power(100 + value)),
        )
        for value in range(5)
    ]


class TestTupleShuffle:
    def test_honest_shuffle_verifies(self, elgamal, dkg, pairs):
        shuffled = shuffle_tuples_with_proof(elgamal, dkg.public_key, pairs, rounds=6)
        assert verify_tuple_shuffle(elgamal, dkg.public_key, pairs, shuffled)

    def test_pairs_stay_linked(self, group, elgamal, dkg, pairs):
        shuffled = shuffle_tuples_with_proof(elgamal, dkg.public_key, pairs, rounds=4)
        decrypted = sorted(
            [
                (group.decode_int(dkg.decrypt(vote)), dkg.decrypt(credential))
                for vote, credential in shuffled.outputs
            ],
            key=lambda pair: pair[1].to_bytes(),
        )
        original = sorted(
            [(value % 2, group.power(100 + value)) for value in range(5)],
            key=lambda pair: pair[1].to_bytes(),
        )
        assert decrypted == original

    def test_tampered_output_rejected(self, group, elgamal, dkg, pairs):
        shuffled = shuffle_tuples_with_proof(elgamal, dkg.public_key, pairs, rounds=6)
        outputs = list(shuffled.outputs)
        outputs[0] = (outputs[0][0], elgamal.encrypt(dkg.public_key, group.power(999)))
        tampered = TupleShuffle(outputs=outputs, rounds=shuffled.rounds)
        assert not verify_tuple_shuffle(elgamal, dkg.public_key, pairs, tampered)

    def test_cascade(self, elgamal, dkg, pairs):
        cascade = tuple_mix_cascade(elgamal, dkg.public_key, pairs, num_mixers=3, rounds=3)
        assert len(cascade.stages) == 3
        assert verify_tuple_cascade(elgamal, dkg.public_key, pairs, cascade)

    def test_single_tuples(self, group, elgamal, dkg):
        singles = [(elgamal.encrypt(dkg.public_key, group.power(value)),) for value in range(3)]
        shuffled = shuffle_tuples_with_proof(elgamal, dkg.public_key, singles, rounds=4)
        assert verify_tuple_shuffle(elgamal, dkg.public_key, singles, shuffled)


class TestDeduplication:
    def _record(self, group, keypair, value: int) -> BallotRecord:
        from repro.crypto.elgamal import ElGamal

        ciphertext = ElGamal(group).encrypt(group.power(3), group.encode_int(value))
        return BallotRecord(
            credential_public_key=keypair.public,
            ciphertext_c1=ciphertext.c1,
            ciphertext_c2=ciphertext.c2,
            signature=schnorr_sign(keypair, b"b"),
        )

    def test_last_ballot_per_credential_wins(self, group):
        keypair = schnorr_keygen(group)
        first = self._record(group, keypair, 0)
        second = self._record(group, keypair, 1)
        deduplicated = deduplicate_ballots([first, second])
        assert deduplicated == [second]

    def test_distinct_credentials_kept(self, group):
        a = self._record(group, schnorr_keygen(group), 0)
        b = self._record(group, schnorr_keygen(group), 1)
        assert len(deduplicate_ballots([a, b])) == 2

    def test_empty_input(self):
        assert deduplicate_ballots([]) == []


class TestTagFiltering:
    def test_real_counted_fake_discarded(self, group, elgamal, dkg):
        tagging = TaggingAuthority.create(group, dkg.num_members)
        real = schnorr_keygen(group)
        fake = schnorr_keygen(group)
        registration_tag = elgamal.encrypt(dkg.public_key, real.public)
        mixed_pairs = [
            (elgamal.encrypt(dkg.public_key, group.encode_int(1)), elgamal.encrypt(dkg.public_key, real.public)),
            (elgamal.encrypt(dkg.public_key, group.encode_int(0)), elgamal.encrypt(dkg.public_key, fake.public)),
        ]
        result = filter_ballots(dkg, tagging, mixed_pairs, [registration_tag], verify=False)
        assert len(result.counted) == 1
        assert result.discarded == 1
        assert group.decode_int(dkg.decrypt(result.counted[0])) == 1

    def test_at_most_one_ballot_per_registration(self, group, elgamal, dkg):
        """A second ballot with the same (real) credential counts as a duplicate."""
        tagging = TaggingAuthority.create(group, dkg.num_members)
        real = schnorr_keygen(group)
        registration_tag = elgamal.encrypt(dkg.public_key, real.public)
        pair = lambda v: (
            elgamal.encrypt(dkg.public_key, group.encode_int(v)),
            elgamal.encrypt(dkg.public_key, real.public),
        )
        result = filter_ballots(dkg, tagging, [pair(1), pair(0)], [registration_tag], verify=False)
        assert len(result.counted) == 1
        assert result.duplicate_tags == 1

    def test_no_registrations_counts_nothing(self, group, elgamal, dkg):
        tagging = TaggingAuthority.create(group, dkg.num_members)
        fake = schnorr_keygen(group)
        pairs = [
            (elgamal.encrypt(dkg.public_key, group.encode_int(0)), elgamal.encrypt(dkg.public_key, fake.public))
        ]
        result = filter_ballots(dkg, tagging, pairs, [], verify=False)
        assert result.counted == []
        assert result.discarded == 1

    def test_tags_exposed_for_audit(self, group, elgamal, dkg):
        tagging = TaggingAuthority.create(group, dkg.num_members)
        real = schnorr_keygen(group)
        registration_tag = elgamal.encrypt(dkg.public_key, real.public)
        pairs = [
            (elgamal.encrypt(dkg.public_key, group.encode_int(1)), elgamal.encrypt(dkg.public_key, real.public))
        ]
        result = filter_ballots(dkg, tagging, pairs, [registration_tag], verify=False)
        assert result.ballot_tags[0] == result.registration_tags[0]
