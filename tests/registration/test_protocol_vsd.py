"""End-to-end registration sessions, activation checks and the VSD."""

import pytest

from repro.errors import VerificationError
from repro.peripherals.clock import Component
from repro.registration.materials import CredentialState
from repro.registration.protocol import RegistrationSession, run_registration
from repro.registration.voter import Voter
from repro.registration.vsd import VoterSupportingDevice


class TestRegistrationWorkflow:
    def test_single_voter_full_workflow(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=2))
        assert outcome.all_activated
        assert outcome.real_activated
        assert len(outcome.voter.credentials) == 3
        assert small_setup.board.registration_for("alice") is not None

    def test_voter_observes_sound_order_only_for_real(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=2))
        assert outcome.voter.real_credential().observed_sound_order is True
        assert all(c.observed_sound_order is False for c in outcome.voter.fake_credentials())

    def test_zero_fake_credentials(self, small_setup):
        outcome = run_registration(small_setup, Voter("bob", num_fake_credentials=0))
        assert outcome.real_activated
        assert outcome.voter.fake_credentials() == []

    def test_session_reuse_across_voters(self, small_setup):
        session = RegistrationSession(setup=small_setup)
        first = session.register(Voter("alice", num_fake_credentials=1))
        second = session.register(Voter("bob", num_fake_credentials=1))
        assert first.real_activated and second.real_activated
        # Per-outcome latency must not accumulate across voters.
        assert abs(first.total_wall_seconds - second.total_wall_seconds) < first.total_wall_seconds

    def test_latency_covers_all_phases(self, small_setup):
        outcome = run_registration(small_setup, Voter("carol", num_fake_credentials=1))
        phases = set(outcome.latency.phases())
        assert {"CheckIn", "Authorization", "RealToken", "FakeToken", "CheckOut", "Activation"} <= phases

    def test_qr_dominates_wall_clock(self, small_setup):
        """§7.2: QR printing and scanning account for ≥69.5 % of wall-clock time."""
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=1))
        qr = outcome.latency.wall_seconds_for(Component.QR_PRINT) + outcome.latency.wall_seconds_for(
            Component.QR_SCAN
        )
        assert qr / outcome.total_wall_seconds >= 0.695

    def test_constrained_profile_slower_than_high_end(self, small_setup):
        slow = run_registration(small_setup, Voter("alice", num_fake_credentials=1), profile_key="L1")
        fast = run_registration(small_setup, Voter("bob", num_fake_credentials=1), profile_key="H1")
        assert slow.total_wall_seconds > fast.total_wall_seconds

    def test_credentials_in_transport_state_after_booth(self, small_setup):
        session = RegistrationSession(setup=small_setup)
        voter = Voter("alice", num_fake_credentials=1)
        session.register(voter, activate=False)
        assert all(c.state is CredentialState.TRANSPORT for c in voter.credentials)

    def test_registration_notification_sent(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice"))
        assert outcome.vsd.registration_notifications


class TestActivationChecks:
    def _fresh_vsd(self, setup, voter_id):
        return VoterSupportingDevice(
            group=setup.group,
            board=setup.board,
            voter_id=voter_id,
            kiosk_public_keys=setup.registrar.kiosk_public_keys,
            authority_public_key=setup.authority_public_key,
        )

    def test_fake_credential_activates_like_real(self, small_setup):
        """By design: a fake credential passes every activation check."""
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=1))
        reports = outcome.activation_reports
        assert all(report.success for report in reports)
        kinds = {report.credential.is_real for report in reports}
        assert kinds == {True, False}

    def test_activation_against_missing_ledger_record_fails(self, small_setup):
        session = RegistrationSession(setup=small_setup)
        voter = Voter("alice", num_fake_credentials=0)
        # Skip check-out: register manually without posting the record.
        ticket = session.official.check_in(voter.voter_id)
        kiosk_session = session.kiosk.authorize(ticket)
        session.kiosk.begin_real_credential(kiosk_session)
        envelope = voter.pick_envelope(session.booth_envelopes, symbol=kiosk_session.pending_symbol)
        receipt = session.kiosk.complete_real_credential(kiosk_session, envelope)
        credential = voter.assemble_credential(receipt, envelope, is_real=True, observed_sound_order=True)
        vsd = self._fresh_vsd(small_setup, "alice")
        report = vsd.activate(credential)
        assert not report.success
        assert "registration record" in report.failed_check

    def test_duplicate_challenge_detected_at_activation(self, small_setup):
        """Envelope stuffing: two voters' credentials built on the same challenge —
        the second activation trips the duplicate check (Appendix F.3.5)."""
        from repro.registration.materials import EnvelopeSymbol

        printer = small_setup.envelope_printers[0]
        stuffed = printer.print_duplicate_envelopes(
            len(list(EnvelopeSymbol)), symbols=list(EnvelopeSymbol)
        )

        session = RegistrationSession(setup=small_setup)
        reports = []
        for voter_id in ("alice", "bob"):
            voter = Voter(voter_id, num_fake_credentials=0)
            ticket = session.official.check_in(voter_id)
            kiosk_session = session.kiosk.authorize(ticket)
            session.kiosk.begin_real_credential(kiosk_session)
            envelope = next(e for e in stuffed if e.symbol == kiosk_session.pending_symbol)
            receipt = session.kiosk.complete_real_credential(kiosk_session, envelope)
            credential = voter.assemble_credential(receipt, envelope, is_real=True, observed_sound_order=True)
            session.official.check_out_ticket(kiosk_session.check_out_ticket)
            reports.append(self._fresh_vsd(small_setup, voter_id).activate(credential))

        assert reports[0].success
        assert not reports[1].success
        assert "already used" in reports[1].failed_check

    def test_activation_with_wrong_voter_identity_fails(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=0), activate=True)
        # Bob's device must refuse Alice's credential.
        vsd = self._fresh_vsd(small_setup, "bob")
        credential = outcome.voter.real_credential()
        credential.state = CredentialState.TRANSPORT
        report = vsd.activate(credential)
        assert not report.success

    def test_activate_or_raise(self, small_setup):
        session = RegistrationSession(setup=small_setup)
        voter = Voter("alice", num_fake_credentials=0)
        session.register(voter, activate=False)
        vsd = self._fresh_vsd(small_setup, "alice")
        activated = vsd.activate_or_raise(voter.real_credential())
        assert activated.is_real
        # Re-activating the same credential reuses the challenge and must fail.
        voter.real_credential().state = CredentialState.TRANSPORT
        with pytest.raises(VerificationError):
            vsd.activate_or_raise(voter.real_credential())

    def test_real_credentials_listed(self, small_setup):
        session = RegistrationSession(setup=small_setup)
        voter = Voter("alice", num_fake_credentials=1)
        outcome = session.register(voter)
        assert len(outcome.vsd.real_credentials()) == 1


class TestVoterBehavior:
    def test_pick_envelope_respects_symbol(self, small_setup):
        from repro.registration.materials import EnvelopeSymbol

        symbol = small_setup.envelope_supply[0].symbol
        envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=symbol)
        assert envelope.symbol == symbol

    def test_surrender_keeps_real_credential_secret(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=2))
        voter = outcome.voter
        surrendered = voter.surrender_credentials_to_coercer()
        assert len(surrendered) == 2
        assert all(view.is_real for view in surrendered)  # all *claimed* real
        real_fingerprint = voter.real_credential().receipt.response_code.credential_secret
        assert all(
            view.receipt.response_code.credential_secret != real_fingerprint for view in surrendered
        )

    def test_check_out_credential_choice_is_any(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=3))
        chosen = outcome.voter.credential_for_check_out()
        assert chosen in outcome.voter.credentials
