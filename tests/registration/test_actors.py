"""Registrar actors: envelope printer, official, kiosk."""

import pytest

from repro.crypto.chaum_pedersen import ChaumPedersenTranscript, chaum_pedersen_verify
from repro.crypto.mac import mac_sign
from repro.crypto.schnorr import schnorr_verify
from repro.errors import ProtocolError, RegistrationError
from repro.registration.kiosk import Kiosk
from repro.registration.materials import CheckInTicket, EnvelopeSymbol
from repro.registration.official import RegistrationOfficial
from repro.registration.voter import Voter


@pytest.fixture()
def kiosk(small_setup):
    return Kiosk(
        group=small_setup.group,
        keypair=small_setup.registrar.kiosk_keys[0],
        authority_public_key=small_setup.authority_public_key,
        shared_mac_key=small_setup.registrar.shared_mac_key,
    )


@pytest.fixture()
def official(small_setup):
    return RegistrationOfficial(
        group=small_setup.group,
        keypair=small_setup.registrar.official_keys[0],
        shared_mac_key=small_setup.registrar.shared_mac_key,
        board=small_setup.board,
        kiosk_public_keys=small_setup.registrar.kiosk_public_keys,
    )


class TestEnvelopePrinter:
    def test_envelopes_have_unique_challenges(self, small_setup):
        challenges = [envelope.challenge for envelope in small_setup.envelope_supply]
        assert len(challenges) == len(set(challenges))

    def test_envelope_signatures_verify(self, small_setup):
        for envelope in small_setup.envelope_supply[:5]:
            assert schnorr_verify(
                envelope.printer_public_key, envelope.challenge_hash, envelope.printer_signature
            )

    def test_commitments_published_on_ledger(self, small_setup):
        envelope = small_setup.envelope_supply[0]
        assert small_setup.board.envelope_commitment(envelope.challenge_hash) is not None

    def test_supply_sized_for_voters_and_booths(self, small_setup):
        # n_E > c·|V| + λ_E·|K| with c=4, λ_E=20, one kiosk, three voters.
        assert len(small_setup.envelope_supply) >= 4 * 3 + 20

    def test_duplicate_envelope_attack_produces_shared_challenge(self, small_setup):
        printer = small_setup.envelope_printers[0]
        duplicates = printer.print_duplicate_envelopes(5)
        assert len({envelope.challenge for envelope in duplicates}) == 1

    def test_restock(self, small_setup):
        before = len(small_setup.envelope_supply)
        small_setup.restock_envelopes(7)
        assert len(small_setup.envelope_supply) == before + 7


class TestOfficialCheckIn:
    def test_check_in_issues_valid_mac(self, small_setup, official):
        ticket = official.check_in("alice")
        assert ticket.voter_id == "alice"
        assert mac_sign(small_setup.registrar.shared_mac_key, b"alice", length=16) == ticket.mac_tag

    def test_ineligible_voter_rejected(self, official):
        with pytest.raises(RegistrationError):
            official.check_in("mallory")

    def test_check_in_latency_recorded(self, official):
        official.check_in("alice")
        assert "CheckIn" in official.latency.phases()


class TestKioskAuthorization:
    def test_valid_ticket_authorized(self, kiosk, official):
        ticket = official.check_in("alice")
        session = kiosk.authorize(ticket)
        assert session.voter_id == "alice"

    def test_forged_ticket_rejected(self, kiosk):
        forged = CheckInTicket(voter_id="alice", mac_tag=b"\x00" * 16)
        with pytest.raises(RegistrationError):
            kiosk.authorize(forged)

    def test_ticket_for_other_voter_id_rejected(self, small_setup, kiosk):
        # A tag computed over a different identity must not authorize "alice".
        tag = mac_sign(small_setup.registrar.shared_mac_key, b"bob", length=16)
        with pytest.raises(RegistrationError):
            kiosk.authorize(CheckInTicket(voter_id="alice", mac_tag=tag))


class TestKioskCredentialIssuance:
    def _authorized_session(self, kiosk, official, voter_id="alice"):
        return kiosk.authorize(official.check_in(voter_id))

    def test_real_credential_flow(self, small_setup, kiosk, official):
        session = self._authorized_session(kiosk, official)
        commit_code = kiosk.begin_real_credential(session)
        assert commit_code.voter_id == "alice"
        envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=session.pending_symbol)
        receipt = kiosk.complete_real_credential(session, envelope)
        assert receipt.check_out_ticket.kiosk_public_key == kiosk.public_key
        assert session.real_sigma.is_sound_order

    def test_real_credential_zkp_is_sound_transcript(self, small_setup, kiosk, official):
        session = self._authorized_session(kiosk, official)
        kiosk.begin_real_credential(session)
        envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=session.pending_symbol)
        receipt = kiosk.complete_real_credential(session, envelope)
        group = small_setup.group
        credential_public = group.power(receipt.response_code.credential_secret)
        statement = kiosk._statement(receipt.commit_code.public_credential, credential_public)
        transcript = ChaumPedersenTranscript(
            statement=statement,
            commit=receipt.commit_code.commit,
            challenge=envelope.challenge,
            response=receipt.response_code.zkp_response,
        )
        assert chaum_pedersen_verify(transcript)
        # And the tag really encrypts the credential's public key.
        assert small_setup.authority.decrypt(receipt.commit_code.public_credential) == credential_public

    def test_envelope_with_wrong_symbol_rejected(self, small_setup, kiosk, official):
        session = self._authorized_session(kiosk, official)
        kiosk.begin_real_credential(session)
        wrong_symbol = next(s for s in EnvelopeSymbol if s != session.pending_symbol)
        try:
            envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=wrong_symbol)
        except ProtocolError:
            pytest.skip("no envelope with a mismatching symbol in this supply draw")
        with pytest.raises(RegistrationError):
            kiosk.complete_real_credential(session, envelope)

    def test_envelope_before_commit_rejected(self, small_setup, kiosk, official):
        session = self._authorized_session(kiosk, official)
        envelope = small_setup.envelope_supply[0]
        with pytest.raises(ProtocolError):
            kiosk.complete_real_credential(session, envelope)

    def test_fake_requires_real_first(self, small_setup, kiosk, official):
        session = self._authorized_session(kiosk, official)
        with pytest.raises(ProtocolError):
            kiosk.create_fake_credential(session, small_setup.envelope_supply[0])

    def test_fake_credential_flow_and_unsound_order(self, small_setup, kiosk, official):
        session = self._authorized_session(kiosk, official)
        kiosk.begin_real_credential(session)
        real_envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=session.pending_symbol)
        kiosk.complete_real_credential(session, real_envelope)
        remaining = [e for e in small_setup.envelope_supply if e.challenge != real_envelope.challenge]
        fake_receipt = kiosk.create_fake_credential(session, remaining[0])
        assert not session.fake_sigmas[0].is_sound_order
        # The fake receipt shares the real credential's public tag and check-out ticket.
        assert fake_receipt.check_out_ticket == session.check_out_ticket
        assert fake_receipt.commit_code.public_credential == session.public_credential
        # But the tag does NOT encrypt the fake credential's key.
        group = small_setup.group
        fake_public = group.power(fake_receipt.response_code.credential_secret)
        assert small_setup.authority.decrypt(fake_receipt.commit_code.public_credential) != fake_public

    def test_fake_transcript_still_verifies(self, small_setup, kiosk, official):
        session = self._authorized_session(kiosk, official)
        kiosk.begin_real_credential(session)
        real_envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=session.pending_symbol)
        kiosk.complete_real_credential(session, real_envelope)
        remaining = [e for e in small_setup.envelope_supply if e.challenge != real_envelope.challenge]
        fake_receipt = kiosk.create_fake_credential(session, remaining[0])
        group = small_setup.group
        fake_public = group.power(fake_receipt.response_code.credential_secret)
        statement = kiosk._statement(fake_receipt.commit_code.public_credential, fake_public)
        transcript = ChaumPedersenTranscript(
            statement=statement,
            commit=fake_receipt.commit_code.commit,
            challenge=remaining[0].challenge,
            response=fake_receipt.response_code.zkp_response,
        )
        assert chaum_pedersen_verify(transcript)

    def test_envelope_reuse_within_session_rejected(self, small_setup, kiosk, official):
        session = self._authorized_session(kiosk, official)
        kiosk.begin_real_credential(session)
        envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=session.pending_symbol)
        kiosk.complete_real_credential(session, envelope)
        with pytest.raises(RegistrationError):
            kiosk.create_fake_credential(session, envelope)

    def test_second_real_credential_rejected(self, small_setup, kiosk, official):
        session = self._authorized_session(kiosk, official)
        kiosk.begin_real_credential(session)
        envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=session.pending_symbol)
        kiosk.complete_real_credential(session, envelope)
        with pytest.raises(ProtocolError):
            kiosk.begin_real_credential(session)


class TestOfficialCheckOut:
    def test_check_out_posts_record(self, small_setup, kiosk, official):
        session = kiosk.authorize(official.check_in("alice"))
        kiosk.begin_real_credential(session)
        envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=session.pending_symbol)
        kiosk.complete_real_credential(session, envelope)
        record = official.check_out_ticket(session.check_out_ticket)
        assert small_setup.board.registration_for("alice") == record
        assert RegistrationOfficial.verify_record(record, small_setup.registrar.kiosk_public_keys)
        assert official.notifications == ["alice"]

    def test_unauthorized_kiosk_rejected(self, small_setup, official, kiosk):
        from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
        from repro.registration.materials import CheckOutTicket, check_out_message
        from repro.crypto.elgamal import ElGamal

        rogue = schnorr_keygen(small_setup.group)
        tag = ElGamal(small_setup.group).encrypt(small_setup.authority_public_key, small_setup.group.power(1))
        forged = CheckOutTicket(
            voter_id="alice",
            public_credential=tag,
            kiosk_public_key=rogue.public,
            kiosk_signature=schnorr_sign(rogue, check_out_message("alice", tag)),
        )
        with pytest.raises(RegistrationError):
            official.check_out_ticket(forged)

    def test_bad_kiosk_signature_rejected(self, small_setup, official, kiosk):
        from repro.crypto.schnorr import schnorr_sign
        from repro.registration.materials import CheckOutTicket
        from repro.crypto.elgamal import ElGamal

        tag = ElGamal(small_setup.group).encrypt(small_setup.authority_public_key, small_setup.group.power(1))
        forged = CheckOutTicket(
            voter_id="alice",
            public_credential=tag,
            kiosk_public_key=kiosk.public_key,
            kiosk_signature=schnorr_sign(small_setup.registrar.kiosk_keys[0], b"wrong message"),
        )
        with pytest.raises(RegistrationError):
            official.check_out_ticket(forged)
