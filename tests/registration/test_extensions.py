"""Optional extensions: credential rotation, in-booth delegation, renewal."""

import pytest

from repro.crypto.schnorr import SigningKeyPair, schnorr_keygen
from repro.errors import ProtocolError, VerificationError
from repro.registration.extensions import (
    DelegationReceipt,
    RotationRecord,
    RotationRegistry,
    delegate_in_booth,
    renew_credential,
    rotate_credential,
    verify_rotation,
)
from repro.registration.kiosk import Kiosk
from repro.registration.official import RegistrationOfficial
from repro.registration.protocol import RegistrationSession, run_registration
from repro.registration.voter import Voter
from repro.tally.pipeline import TallyPipeline, verify_tally
from repro.voting.ballot import make_ballot
from repro.voting.client import VotingClient


def _client(setup, outcome) -> VotingClient:
    client = VotingClient(
        group=setup.group, board=setup.board, authority_public_key=setup.authority_public_key
    )
    for report in outcome.activation_reports:
        client.add_credential(report.credential)
    return client


class TestCredentialRotation:
    def test_rotation_record_verifies(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=0))
        credential = outcome.vsd.real_credentials()[0]
        new_keypair, record = rotate_credential(small_setup.group, credential)
        assert verify_rotation(record)
        assert record.new_public_key == new_keypair.public
        assert record.old_public_key == credential.public_key

    def test_forged_rotation_rejected(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=0))
        credential = outcome.vsd.real_credentials()[0]
        _, record = rotate_credential(small_setup.group, credential)
        rogue = schnorr_keygen(small_setup.group)
        forged = RotationRecord(record.old_public_key, rogue.public, record.signature)
        assert not verify_rotation(forged)
        registry = RotationRegistry()
        with pytest.raises(VerificationError):
            registry.publish(forged)

    def test_registry_resolves_chains(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=0))
        credential = outcome.vsd.real_credentials()[0]
        registry = RotationRegistry()
        first_keypair, first_record = rotate_credential(small_setup.group, credential)
        registry.publish(first_record)
        # Port to a second device: rotate again from the device key.
        from repro.registration.materials import ActivatedCredential

        ported = ActivatedCredential(
            voter_id=credential.voter_id,
            secret_key=first_keypair.secret,
            public_key=first_keypair.public,
            public_credential=credential.public_credential,
            transcript=credential.transcript,
            kiosk_public_key=credential.kiosk_public_key,
            is_real=True,
        )
        second_keypair, second_record = rotate_credential(small_setup.group, ported)
        registry.publish(second_record)
        assert registry.resolve(second_keypair.public) == credential.public_key
        assert registry.is_retired(credential.public_key)
        assert registry.is_retired(first_keypair.public)
        assert not registry.is_retired(second_keypair.public)

    def test_rotated_credential_votes_and_old_key_is_dead(self, small_setup):
        """After rotation, only the device key's ballot counts (Appendix C.2)."""
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=0))
        credential = outcome.vsd.real_credentials()[0]
        registry = RotationRegistry()
        device_keypair, record = rotate_credential(small_setup.group, credential)
        registry.publish(record)

        group = small_setup.group
        # A thief who copied the receipt votes with the kiosk-issued key...
        stolen = make_ballot(
            group,
            small_setup.authority_public_key,
            SigningKeyPair(secret=credential.secret_key, public=credential.public_key),
            0,
            2,
        )
        small_setup.board.post_ballot(stolen.to_record())
        # ... while the voter votes with the rotated device key.
        honest = make_ballot(group, small_setup.authority_public_key, device_keypair, 1, 2)
        small_setup.board.post_ballot(honest.to_record())

        pipeline = TallyPipeline(group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2, rotations=registry)
        assert result.counts == {0: 0, 1: 1}
        assert verify_tally(group, small_setup.authority, small_setup.board, result, rotations=registry)

    def test_fake_credentials_rotate_identically(self, small_setup):
        """Rotation must not leak realness: fake credentials rotate the same way."""
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=1))
        fake = [c for c in outcome.vsd.credentials if not c.is_real][0]
        _, record = rotate_credential(small_setup.group, fake)
        assert verify_rotation(record)

    def test_double_registration_of_device_key_rejected(self, small_setup):
        outcome = run_registration(small_setup, Voter("alice", num_fake_credentials=0))
        credential = outcome.vsd.real_credentials()[0]
        registry = RotationRegistry()
        _, record = rotate_credential(small_setup.group, credential)
        registry.publish(record)
        with pytest.raises(ProtocolError):
            registry.publish(record)


class TestDelegation:
    def _kiosk_and_official(self, setup):
        kiosk = Kiosk(
            group=setup.group,
            keypair=setup.registrar.kiosk_keys[0],
            authority_public_key=setup.authority_public_key,
            shared_mac_key=setup.registrar.shared_mac_key,
        )
        official = RegistrationOfficial(
            group=setup.group,
            keypair=setup.registrar.official_keys[0],
            shared_mac_key=setup.registrar.shared_mac_key,
            board=setup.board,
            kiosk_public_keys=setup.registrar.kiosk_public_keys,
        )
        return kiosk, official

    def test_delegated_vote_counts_for_the_party(self, small_setup):
        """Appendix C.3: the voter leaves with only fakes; the party's ballot
        is counted once on the voter's behalf."""
        group = small_setup.group
        party = schnorr_keygen(group)
        kiosk, official = self._kiosk_and_official(small_setup)

        session = kiosk.authorize(official.check_in("alice"))
        receipt = delegate_in_booth(kiosk, session, party.public, delegate_label="Party A")
        assert isinstance(receipt, DelegationReceipt)
        # The voter can still create fake credentials to satisfy a coercer.
        fake = kiosk.create_fake_credential(session, small_setup.envelope_supply[0])
        assert fake.check_out_ticket == receipt.check_out_ticket
        official.check_out_ticket(receipt.check_out_ticket)

        # The party casts its ballot; the voter's tag matches it.
        party_ballot = make_ballot(group, small_setup.authority_public_key, party, 1, 2)
        small_setup.board.post_ballot(party_ballot.to_record())

        pipeline = TallyPipeline(group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.counts == {0: 0, 1: 1}

    def test_fake_ballots_of_delegating_voter_do_not_count(self, small_setup):
        group = small_setup.group
        party = schnorr_keygen(group)
        kiosk, official = self._kiosk_and_official(small_setup)
        session = kiosk.authorize(official.check_in("alice"))
        receipt = delegate_in_booth(kiosk, session, party.public)
        fake_receipt = kiosk.create_fake_credential(session, small_setup.envelope_supply[0])
        official.check_out_ticket(receipt.check_out_ticket)

        fake_keypair = SigningKeyPair(
            secret=fake_receipt.response_code.credential_secret,
            public=group.power(fake_receipt.response_code.credential_secret),
        )
        coerced = make_ballot(group, small_setup.authority_public_key, fake_keypair, 0, 2)
        small_setup.board.post_ballot(coerced.to_record())

        pipeline = TallyPipeline(group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.counts == {0: 0, 1: 0}
        assert result.num_discarded == 1

    def test_delegation_after_real_credential_rejected(self, small_setup):
        group = small_setup.group
        party = schnorr_keygen(group)
        kiosk, official = self._kiosk_and_official(small_setup)
        session = kiosk.authorize(official.check_in("alice"))
        kiosk.begin_real_credential(session)
        envelope = Voter.pick_envelope(small_setup.envelope_supply, symbol=session.pending_symbol)
        kiosk.complete_real_credential(session, envelope)
        with pytest.raises(ProtocolError):
            delegate_in_booth(kiosk, session, party.public)


class TestRenewal:
    def test_renewal_supersedes_and_old_votes_stop_counting(self, small_setup):
        session = RegistrationSession(setup=small_setup)
        first = session.register(Voter("alice", num_fake_credentials=0))
        old_client = _client(small_setup, first)

        renewed = renew_credential(session, "alice", num_fake_credentials=0)
        new_client = _client(small_setup, renewed)

        old_client.cast_real(0, 2)
        new_client.cast_real(1, 2)

        pipeline = TallyPipeline(small_setup.group, small_setup.authority, num_mixers=2, proof_rounds=2)
        result = pipeline.run(small_setup.board, num_options=2)
        assert result.counts == {0: 0, 1: 1}
        assert small_setup.board.num_registered == 1
        assert len(small_setup.board.registration_history("alice")) == 2
