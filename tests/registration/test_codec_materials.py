"""Serialization codec and the physical registration artefacts."""

import pytest

from repro.crypto.chaum_pedersen import ChaumPedersenCommit
from repro.crypto.elgamal import ElGamal
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.errors import ProtocolError
from repro.registration.codec import Decoder, Encoder, scalar_bytes
from repro.registration.materials import (
    CheckInTicket,
    CheckOutTicket,
    CommitCode,
    CredentialState,
    Envelope,
    EnvelopeSymbol,
    PaperCredential,
    Receipt,
    ResponseCode,
)


class TestCodec:
    def test_roundtrip_all_field_types(self, group):
        keys = schnorr_keygen(group)
        signature = schnorr_sign(keys, b"m")
        encoded = (
            Encoder()
            .put_str("alice")
            .put_bytes(b"\x01\x02")
            .put_int(12345, group)
            .put_element(keys.public)
            .put_signature(signature, group)
            .bytes()
        )
        decoder = Decoder(encoded)
        assert decoder.get_str() == "alice"
        assert decoder.get_bytes() == b"\x01\x02"
        assert decoder.get_int() == 12345
        assert decoder.get_element(group) == keys.public
        assert decoder.get_signature(group) == signature
        assert decoder.exhausted

    def test_truncated_payload_detected(self, group):
        encoded = Encoder().put_str("alice").bytes()
        decoder = Decoder(encoded[:-2])
        with pytest.raises(ProtocolError):
            decoder.get_str()

    def test_scalar_bytes_matches_group_order(self, group):
        assert scalar_bytes(group) == (group.order.bit_length() + 7) // 8

    def test_oversized_field_rejected(self):
        with pytest.raises(ProtocolError):
            Encoder().put_bytes(b"x" * 70000)


@pytest.fixture()
def sample_receipt(group):
    elgamal = ElGamal(group)
    kiosk = schnorr_keygen(group)
    credential = schnorr_keygen(group)
    tag = elgamal.encrypt(group.power(7), credential.public)
    commit = ChaumPedersenCommit(group.power(3), group.power(4))
    commit_code = CommitCode("alice", tag, commit, schnorr_sign(kiosk, b"c"))
    checkout = CheckOutTicket("alice", tag, kiosk.public, schnorr_sign(kiosk, b"t"))
    response = ResponseCode(credential.secret, 99, kiosk.public, schnorr_sign(kiosk, b"r"))
    return Receipt(EnvelopeSymbol.STAR, commit_code, checkout, response)


@pytest.fixture()
def sample_envelope(group):
    printer = schnorr_keygen(group)
    challenge = group.random_scalar()
    return Envelope(
        symbol=EnvelopeSymbol.STAR,
        challenge=challenge,
        printer_public_key=printer.public,
        printer_signature=schnorr_sign(printer, b"h"),
        serial=1,
    )


class TestQrSerialization:
    def test_check_in_ticket_barcode_roundtrip(self):
        ticket = CheckInTicket("alice", b"\xaa" * 16)
        assert CheckInTicket.from_barcode(ticket.to_barcode()) == ticket

    def test_envelope_qr_roundtrip(self, group, sample_envelope):
        decoded = Envelope.from_qr(sample_envelope.to_qr(group), group, serial=1)
        assert decoded == sample_envelope

    def test_commit_code_qr_roundtrip(self, group, sample_receipt):
        code = sample_receipt.commit_code
        assert CommitCode.from_qr(code.to_qr(group), group) == code

    def test_check_out_ticket_qr_roundtrip(self, group, sample_receipt):
        ticket = sample_receipt.check_out_ticket
        assert CheckOutTicket.from_qr(ticket.to_qr(group), group) == ticket

    def test_response_code_qr_roundtrip(self, group, sample_receipt):
        response = sample_receipt.response_code
        assert ResponseCode.from_qr(response.to_qr(group), group) == response

    def test_qr_payload_sizes_within_paper_range_on_toy_group(self, group, sample_receipt, sample_envelope):
        for qr in (
            sample_receipt.commit_code.to_qr(group),
            sample_receipt.check_out_ticket.to_qr(group),
            sample_receipt.response_code.to_qr(group),
            sample_envelope.to_qr(group),
        ):
            assert len(qr.payload) <= 356


class TestPaperCredential:
    def test_state_machine(self, group, sample_receipt, sample_envelope):
        credential = PaperCredential(receipt=sample_receipt, envelope=sample_envelope, is_real=True)
        assert credential.state is CredentialState.IN_BOOTH
        credential.insert_for_transport()
        assert credential.state is CredentialState.TRANSPORT
        credential.lift_for_activation()
        assert credential.state is CredentialState.ACTIVATE

    def test_activation_requires_transport_first(self, group, sample_receipt, sample_envelope):
        credential = PaperCredential(receipt=sample_receipt, envelope=sample_envelope, is_real=True)
        with pytest.raises(ProtocolError):
            credential.lift_for_activation()

    def test_check_out_qr_only_visible_in_transport(self, group, sample_receipt, sample_envelope):
        credential = PaperCredential(receipt=sample_receipt, envelope=sample_envelope, is_real=True)
        with pytest.raises(ProtocolError):
            credential.visible_check_out_qr(group)
        credential.insert_for_transport()
        assert credential.visible_check_out_qr(group).payload

    def test_activation_qrs_only_visible_in_activate_state(self, group, sample_receipt, sample_envelope):
        credential = PaperCredential(receipt=sample_receipt, envelope=sample_envelope, is_real=True)
        credential.insert_for_transport()
        with pytest.raises(ProtocolError):
            credential.visible_activation_qrs(group)
        credential.lift_for_activation()
        assert len(credential.visible_activation_qrs(group)) == 3

    def test_real_credential_symbol_mismatch_rejected(self, group, sample_receipt):
        printer = schnorr_keygen(group)
        mismatched = Envelope(
            symbol=EnvelopeSymbol.CIRCLE,
            challenge=5,
            printer_public_key=printer.public,
            printer_signature=schnorr_sign(printer, b"h"),
        )
        with pytest.raises(ProtocolError):
            PaperCredential(receipt=sample_receipt, envelope=mismatched, is_real=True)

    def test_coercer_view_hides_the_realness_bit(self, group, sample_receipt, sample_envelope):
        credential = PaperCredential(
            receipt=sample_receipt,
            envelope=sample_envelope,
            is_real=False,
            voter_marking="F1",
            observed_sound_order=False,
        )
        view = credential.coercer_view()
        assert view.is_real is True          # the coercer is told it is real
        assert view.voter_marking == ""      # private marking withheld
        assert view.observed_sound_order is None
        assert view.receipt == credential.receipt

    def test_marking(self, group, sample_receipt, sample_envelope):
        credential = PaperCredential(receipt=sample_receipt, envelope=sample_envelope, is_real=True)
        credential.mark("RR")
        assert credential.voter_marking == "RR"


class TestEnvelopeSymbols:
    def test_random_symbol_is_member(self):
        assert EnvelopeSymbol.random() in list(EnvelopeSymbol)

    def test_five_distinct_symbols(self):
        assert len(list(EnvelopeSymbol)) == 5

    def test_challenge_hash_is_stable(self, group, sample_envelope):
        assert sample_envelope.challenge_hash == sample_envelope.challenge_hash
