"""Graceful drain: in-process shutdown semantics and SIGTERM end-to-end."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.gateway.client import CastingSession, GatewayClientError, RateLimited


def test_shutdown_refuses_new_work_and_flushes(gateway):
    client = gateway.client(client_id="drain")
    client.create_election("drain-demo", 4, 2)
    session = CastingSession(client, "drain-demo")
    session.refresh()
    credentials = [session.register(f"voter-{i:04d}").credentials[0] for i in range(3)]
    wires = [session.make_ballot_wire(credential, 1) for credential in credentials]
    session.cast([(credentials[0], 1)])

    gateway.run(gateway.service.shutdown())

    assert client.health().status == "draining"
    # New casts are refused with 503 + Retry-After while draining.
    with pytest.raises(RateLimited) as excinfo:
        client.cast_ballots("drain-demo", wires[1:])
    assert excinfo.value.status == 503
    assert excinfo.value.retry_after_seconds > 0.0
    with pytest.raises(GatewayClientError) as excinfo2:
        client.create_election("late", 2, 2)
    assert excinfo2.value.status == 503

    # Everything admitted before the drain reached the inner chains.
    board = gateway.service.tenants["drain-demo"].setup.board
    assert board.num_ballots == 1
    assert board.verify_all_chains()
    client.close()


def test_queued_casts_resolve_during_drain(gateway):
    """Casts parked on the admission queue still get receipts on shutdown."""
    client = gateway.client(client_id="drain2")
    client.create_election("drain-queue", 4, 2)
    session = CastingSession(client, "drain-queue")
    session.refresh()
    credential = session.register("voter-0000").credentials[0]
    response = session.cast([(credential, 0), (credential, 1)])
    assert len(response.ledger_seqs) == 2
    gateway.run(gateway.service.shutdown())
    board = gateway.service.tenants["drain-queue"].setup.board
    assert board.num_ballots == 2
    client.close()


def test_sigterm_drains_and_exits_zero():
    """``python -m repro.gateway`` drains on SIGTERM and exits 0."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_TELEMETRY", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.gateway", "--election", "sig:3:2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        line = process.stdout.readline()
        assert "gateway listening on" in line, line
        host_port = line.strip().rsplit(" ", 1)[-1]
        port = int(host_port.rsplit(":", 1)[-1])

        from repro.gateway.client import GatewayClient

        client = GatewayClient(port=port, client_id="sigterm-test")
        health = client.health()
        assert health.status == "ok"
        assert health.elections == 1
        assert client.info("sig").status == "open"
        client.close()

        process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 60
        while process.poll() is None and time.monotonic() < deadline:
            time.sleep(0.1)
        assert process.poll() == 0, f"gateway exited {process.poll()}"
        remaining = process.stdout.read()
        assert "gateway draining" in remaining
        assert "gateway drained" in remaining
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
