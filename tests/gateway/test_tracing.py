"""Distributed tracing over real HTTP, plus the debug ops plane.

The acceptance pin for the tracing work: one SDK cast over a real socket
produces ONE trace whose parent chain runs
``gateway.client.request`` → ``gateway.request`` → ``gateway.batch.admit``
→ ``ledger.flush`` — across the HTTP boundary, the cast queue, the admitter
task, and the ``to_thread`` flush hop.  The debug routes are exercised both
enabled (live JSON state) and disabled (invisible: plain 404).
"""

from __future__ import annotations

import http.client
import json
import os
from pathlib import Path

import pytest

from repro import telemetry
from repro.gateway.client import CastingSession, GatewayClientError
from repro.gateway.governor import GovernorConfig
from repro.gateway.routes import DEBUG_ENV
from repro.gateway.service import ServiceConfig
from repro.telemetry import TelemetrySnapshot
from repro.telemetry.__main__ import main as telemetry_cli


@pytest.fixture(autouse=True)
def clean_telemetry():
    yield
    telemetry.configure("off")
    os.environ.pop("REPRO_TELEMETRY", None)


def test_one_cast_is_one_trace_from_sdk_to_ledger_flush(make_gateway, tmp_path):
    """SDK → request → batch admit → ledger flush: one trace_id, one chain."""
    trace_file = tmp_path / "trace.jsonl"
    telemetry.configure(f"jsonl:{trace_file}", propagate=False)
    # batch_size=1 also sets the BatchedBoard's flush trigger to 1, so the
    # admitted cast flushes to the inner chain inside this same trace.
    fixture = make_gateway(ServiceConfig(governor=GovernorConfig(batch_size=1)))
    client = fixture.client(client_id="traced")
    client.create_election("traced", 4, 2)
    session = CastingSession(client, "traced")
    session.refresh()
    credential = session.register("voter-0000").credentials[0]
    response = session.cast([(credential, 1)])
    assert len(response.ledger_seqs) == 1
    client.close()
    telemetry.configure("off")  # flush the jsonl sink

    snapshot = TelemetrySnapshot.from_jsonl(str(trace_file))
    casts = [
        span
        for span in snapshot.spans_named("gateway.client.request")
        if span["attrs"].get("path", "").endswith("/ballots")
    ]
    assert len(casts) == 1
    sdk_span = casts[0]
    trace_id = sdk_span["trace_id"]
    chain = snapshot.trace_spans(trace_id)
    by_name = {span["name"]: span for span in chain}
    assert {
        "gateway.client.request",
        "gateway.request",
        "gateway.batch.admit",
        "ledger.flush",
    } <= set(by_name)
    # The parent chain crosses every boundary without forking the trace.
    assert by_name["gateway.request"]["parent_id"] == sdk_span["span_id"]
    assert by_name["gateway.batch.admit"]["parent_id"] == by_name["gateway.request"]["span_id"]
    assert by_name["ledger.flush"]["parent_id"] == by_name["gateway.batch.admit"]["span_id"]
    assert by_name["gateway.batch.admit"]["attrs"]["traces"] == 1

    # The ops-plane CLI renders the same trace as a waterfall (unique-prefix
    # lookup, exactly how an operator would paste an exemplar).
    assert "ledger.flush" in snapshot.render_waterfall(trace_id)
    assert telemetry_cli(["trace", str(trace_file), trace_id[:12]]) == 0
    assert telemetry_cli(["slowest", str(trace_file), "3"]) == 0

    # CI points this at its artifact directory: every run ships the real
    # end-to-end trace this test just pinned, plus its rendered waterfall.
    export_dir = os.environ.get("REPRO_TRACE_EXPORT_DIR")
    if export_dir:
        target = Path(export_dir)
        target.mkdir(parents=True, exist_ok=True)
        (target / "trace.jsonl").write_bytes(trace_file.read_bytes())
        (target / "waterfall.txt").write_text(snapshot.render_waterfall(trace_id) + "\n")


def test_response_echoes_traceparent_and_request_histogram_has_exemplar(gateway):
    telemetry.configure("mem", propagate=False)
    trace_id = "4bf92f3577b34da6a3ce929d0e0e4736"
    connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
    try:
        connection.request(
            "GET", "/healthz",
            headers={"traceparent": f"00-{trace_id}-00f067aa0ba902b7-01"},
        )
        response = connection.getresponse()
        response.read()
        echoed = response.getheader("traceparent")
    finally:
        connection.close()
    # The response names the server's own request span within OUR trace.
    context = telemetry.parse_traceparent(echoed or "")
    assert context is not None and context.trace_id == trace_id
    assert context.span_id != "00f067aa0ba902b7"

    snapshot = telemetry.snapshot()
    (request_span,) = snapshot.spans_named("gateway.request")
    assert request_span["trace_id"] == trace_id
    assert request_span["span_id"] == context.span_id
    assert request_span["attrs"]["status"] == 200
    # The latency histogram kept that trace id as its exemplar.
    key = ("gateway.request.seconds", (("method", "GET"), ("route", "/healthz")))
    assert snapshot.histogram_exemplars[key] == trace_id
    assert snapshot.histogram_quantile("gateway.request.seconds", 0.99) is not None


def test_debug_routes_are_invisible_without_the_env_flag(gateway, monkeypatch):
    monkeypatch.delenv(DEBUG_ENV, raising=False)
    client = gateway.client()
    for path in ("/v1/debug/spans", "/v1/debug/queues",
                 "/v1/debug/governors", "/v1/debug/tenants"):
        with pytest.raises(GatewayClientError) as excinfo:
            client._raw_request("GET", path, None)
        assert excinfo.value.status == 404
    client.close()


def test_debug_routes_serve_live_json_state(gateway, monkeypatch):
    monkeypatch.setenv(DEBUG_ENV, "1")
    telemetry.configure("mem", propagate=False)
    client = gateway.client(client_id="ops")
    client.create_election("dbg", 4, 2)

    status, payload = client._raw_request("GET", "/v1/debug/tenants", None)
    assert status == 200
    tenants = json.loads(payload)
    assert tenants["draining"] is False
    assert tenants["tenants"]["dbg"]["status"] == "open"
    assert tenants["tenants"]["dbg"]["num_voters"] == 4

    _, payload = client._raw_request("GET", "/v1/debug/queues", None)
    queues = json.loads(payload)
    assert queues["queues"]["dbg"]["admitter_running"] is True
    assert queues["queues"]["dbg"]["pending"] == 0

    _, payload = client._raw_request("GET", "/v1/debug/governors", None)
    governors = json.loads(payload)
    assert "dbg" in governors["governors"]

    # The spans view reports whatever is in flight — at minimum the
    # gateway.request span serving this very call, with its trace id.
    _, payload = client._raw_request("GET", "/v1/debug/spans", None)
    spans = json.loads(payload)["spans"]
    ours = [span for span in spans if span["name"] == "gateway.request"]
    assert ours and len(ours[0]["trace_id"]) == 32
    assert ours[0]["elapsed_seconds"] >= 0
    client.close()
