"""Schema layer: strict round-trips and the rejection matrix."""

from __future__ import annotations

import json

import pytest

from repro.crypto.schnorr import schnorr_keygen
from repro.gateway.schemas import (
    MAX_CAST_BATCH,
    SCHEMA_VERSION,
    AuditReportWire,
    BallotWire,
    CastRequest,
    CreateElectionRequest,
    CredentialWire,
    ElectionInfo,
    ErrorBody,
    HealthResponse,
    RegisterRequest,
    RegisterResponse,
    SchemaError,
    TallyResponse,
    ballot_from_wire,
    ballot_to_wire,
    schema_catalog,
    schema_markdown,
)
from repro.voting.ballot import make_ballot


def wire_ballot(group, election_id="default", choice=1):
    dkg_key = schnorr_keygen(group)
    credential = schnorr_keygen(group)
    ballot = make_ballot(group, dkg_key.public, credential, choice, 2, election_id=election_id)
    return ballot_to_wire(ballot.to_record())


# ------------------------------------------------------------------ round trips


def test_every_schema_is_registered():
    catalog = schema_catalog()
    for name in (
        "ErrorBody",
        "CreateElectionRequest",
        "ElectionInfo",
        "RegisterRequest",
        "CredentialWire",
        "RegisterResponse",
        "BallotWire",
        "CastRequest",
        "CastResponse",
        "TallyResponse",
        "AuditReportWire",
        "HealthResponse",
        "AuditStreamEvent",
    ):
        assert name in catalog
        assert schema_markdown(catalog[name]).startswith(f"### `{name}`")


def test_create_election_round_trip():
    original = CreateElectionRequest(
        election_id="demo", num_voters=10, num_options=3, num_authority_members=5, group="toy"
    )
    decoded = CreateElectionRequest.from_json(original.to_json())
    assert decoded == original
    assert json.loads(original.to_json())["schema_version"] == SCHEMA_VERSION


def test_optional_fields_omitted_on_wire():
    request = CreateElectionRequest(election_id="demo", num_voters=1, num_options=2)
    data = json.loads(request.to_json())
    assert "num_authority_members" not in data
    assert "group" not in data
    assert CreateElectionRequest.from_json_dict(data) == request


def test_ballot_wire_round_trip(group):
    wire = wire_ballot(group)
    decoded = BallotWire.from_json(wire.to_json())
    assert decoded == wire
    record = ballot_from_wire(group, decoded)
    assert ballot_to_wire(record) == wire


def test_register_response_nested_round_trip():
    response = RegisterResponse(
        voter_id="alice",
        ledger_seq=4,
        credentials=[
            CredentialWire(voter_id="alice", secret_key=1234, public_key=b"\x01\x02", is_real=True),
            CredentialWire(voter_id="alice", secret_key=77, public_key=b"\x03", is_real=False),
        ],
    )
    decoded = RegisterResponse.from_json(response.to_json())
    assert decoded == response
    # Scalars travel as decimal strings so non-bignum parsers survive them.
    assert json.loads(response.to_json())["credentials"][0]["secret_key"] == "1234"


def test_tally_and_audit_round_trip():
    tally = TallyResponse(
        election_id="demo",
        counts={"0": 3, "1": 7},
        turnout=10,
        num_ballots_on_ledger=11,
        num_valid_ballots=11,
        num_counted=10,
        num_discarded=1,
        winner=1,
    )
    assert TallyResponse.from_json(tally.to_json()) == tally
    report = AuditReportWire(
        election_id="demo",
        ok=False,
        strategy="batched",
        num_checks=12,
        num_failed=1,
        fingerprint="ab" * 16,
        elapsed_seconds=0.25,
        failures=["chain:ballot-log"],
    )
    assert AuditReportWire.from_json(report.to_json()) == report


# ------------------------------------------------------------ rejection matrix


def expect_errors(schema, data, *paths):
    with pytest.raises(SchemaError) as excinfo:
        schema.from_json_dict(data)
    for path in paths:
        assert path in excinfo.value.field_errors, excinfo.value.field_errors
    return excinfo.value.field_errors


def test_rejects_non_object_body():
    expect_errors(RegisterRequest, [1, 2, 3], "$body")
    with pytest.raises(SchemaError) as excinfo:
        RegisterRequest.from_json(b"{not json")
    assert "$body" in excinfo.value.field_errors


def test_rejects_unknown_fields():
    expect_errors(RegisterRequest, {"voter_id": "alice", "voterid": "typo"}, "voterid")


def test_rejects_missing_required_fields():
    errors = expect_errors(CreateElectionRequest, {"election_id": "x"}, "num_voters", "num_options")
    assert errors["num_voters"] == "required field is missing"


def test_rejects_schema_version_mismatch():
    expect_errors(
        RegisterRequest, {"voter_id": "alice", "schema_version": 99}, "schema_version"
    )
    # The correct version is accepted when pinned explicitly.
    decoded = RegisterRequest.from_json_dict(
        {"voter_id": "alice", "schema_version": SCHEMA_VERSION}
    )
    assert decoded.voter_id == "alice"


def test_rejects_wrong_primitive_types():
    expect_errors(RegisterRequest, {"voter_id": 5}, "voter_id")
    expect_errors(
        CreateElectionRequest,
        {"election_id": "x", "num_voters": "ten", "num_options": 2},
        "num_voters",
    )
    # Booleans are not integers on this wire.
    expect_errors(
        CreateElectionRequest,
        {"election_id": "x", "num_voters": True, "num_options": 2},
        "num_voters",
    )


def test_rejects_out_of_range_ints():
    expect_errors(
        CreateElectionRequest,
        {"election_id": "x", "num_voters": 0, "num_options": 2},
        "num_voters",
    )
    expect_errors(
        CreateElectionRequest,
        {"election_id": "x", "num_voters": 5, "num_options": 100},
        "num_options",
    )


def test_rejects_bad_hex_and_scalar_with_indexed_paths(group):
    wire = json.loads(wire_ballot(group).to_json())
    bad = dict(wire)
    bad["ciphertext_c1"] = "zz-not-hex"
    expect_errors(CastRequest, {"ballots": [wire, bad]}, "ballots[1].ciphertext_c1")
    bad_scalar = dict(wire)
    bad_scalar["signature_response"] = "-5"
    expect_errors(CastRequest, {"ballots": [bad_scalar]}, "ballots[0].signature_response")


def test_rejects_empty_and_oversized_cast_batches(group):
    expect_errors(CastRequest, {"ballots": []}, "ballots")
    wire = json.loads(wire_ballot(group).to_json())
    expect_errors(CastRequest, {"ballots": [wire] * (MAX_CAST_BATCH + 1)}, "ballots")


def test_rejects_corrupt_group_element_bytes(group):
    wire = wire_ballot(group)
    corrupt = BallotWire(
        credential_public_key=b"\xff" * 64,
        ciphertext_c1=wire.ciphertext_c1,
        ciphertext_c2=wire.ciphertext_c2,
        signature_commitment=wire.signature_commitment,
        signature_response=wire.signature_response,
        election_id=wire.election_id,
    )
    with pytest.raises(SchemaError) as excinfo:
        ballot_from_wire(group, corrupt, path="ballots[3]")
    assert "ballots[3].credential_public_key" in excinfo.value.field_errors


def test_error_body_round_trip_with_field_errors():
    body = ErrorBody(
        error="request failed validation",
        field_errors={"ballots[0].ciphertext_c1": "not valid hex"},
        retry_after_seconds=0.5,
    )
    assert ErrorBody.from_json(body.to_json()) == body


def test_health_rejects_extra_and_wrong_types():
    expect_errors(
        HealthResponse,
        {"status": "ok", "elections": 1, "uptime_seconds": "soon"},
        "uptime_seconds",
    )
    expect_errors(
        ElectionInfo,
        {"election_id": "x"},
        "status",
        "generator",
        "authority_public_key",
    )
