"""Admission control units: token buckets, shedding, Retry-After honesty."""

from __future__ import annotations

import pytest

from repro.gateway.governor import (
    BATCH_SIZE_ENV,
    MAX_TRACKED_CLIENTS,
    QUEUE_DEPTH_ENV,
    GovernorConfig,
    TenantGovernor,
    TokenBucket,
)


def test_bucket_allows_burst_then_meters():
    bucket = TokenBucket(rate=10.0, burst=5.0, now=0.0)
    for _ in range(5):
        assert bucket.try_acquire(0.0) == 0.0
    wait = bucket.try_acquire(0.0)
    assert wait == pytest.approx(0.1)
    # After exactly that wait, one token is available again.
    assert bucket.try_acquire(wait) == 0.0


def test_bucket_refills_capped_at_burst():
    bucket = TokenBucket(rate=100.0, burst=4.0, now=0.0)
    for _ in range(4):
        assert bucket.try_acquire(0.0) == 0.0
    # A long idle period refills to burst, not beyond.
    for _ in range(4):
        assert bucket.try_acquire(1000.0) == 0.0
    assert bucket.try_acquire(1000.0) > 0.0


def test_bucket_rejects_nonpositive_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0, now=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=-1.0, now=0.0)


def test_governor_sheds_on_tenant_rate():
    config = GovernorConfig(tenant_rate=10.0, tenant_burst=4.0)
    governor = TenantGovernor(config=config)
    verdict = governor.admit_cast("client-a", 4, now=0.0)
    assert verdict.allowed
    shed = governor.admit_cast("client-a", 2, now=0.0)
    assert not shed.allowed
    assert shed.reason == "tenant rate limit"
    assert shed.retry_after_seconds == pytest.approx(0.2)
    assert governor.snapshot() == (0, 4, 2)


def test_governor_sheds_per_client_independently():
    config = GovernorConfig(
        tenant_rate=1e9, tenant_burst=1e9, client_rate=10.0, client_burst=2.0
    )
    governor = TenantGovernor(config=config)
    assert governor.admit_cast("client-a", 2, now=0.0).allowed
    assert not governor.admit_cast("client-a", 1, now=0.0).allowed
    # A different client has its own bucket.
    assert governor.admit_cast("client-b", 2, now=0.0).allowed


def test_governor_sheds_on_queue_depth_with_drain_estimate():
    config = GovernorConfig(
        tenant_rate=1e9, tenant_burst=1e9, client_rate=1e9, client_burst=1e9,
        queue_depth=10, batch_size=5, batch_window_seconds=0.01,
    )
    governor = TenantGovernor(config=config)
    assert governor.admit_cast("c", 8, now=0.0).allowed
    governor.queued = 8
    verdict = governor.admit_cast("c", 4, now=0.0)
    assert not verdict.allowed
    assert verdict.reason == "admission queue full"
    assert verdict.retry_after_seconds >= 0.02


def test_client_bucket_eviction_is_bounded():
    config = GovernorConfig(tenant_rate=1e9, tenant_burst=1e9)
    governor = TenantGovernor(config=config)
    for index in range(MAX_TRACKED_CLIENTS + 50):
        governor.admit_cast(f"client-{index}", 1, now=float(index))
    assert len(governor.client_buckets) <= MAX_TRACKED_CLIENTS


def test_config_from_env_and_overrides(monkeypatch):
    monkeypatch.setenv(BATCH_SIZE_ENV, "7")
    monkeypatch.setenv(QUEUE_DEPTH_ENV, "33")
    config = GovernorConfig.from_env()
    assert config.batch_size == 7
    assert config.queue_depth == 33
    config = GovernorConfig.from_env(queue_depth=5, tenant_rate=1.5)
    assert config.batch_size == 7
    assert config.queue_depth == 5
    assert config.tenant_rate == 1.5
    with pytest.raises(ValueError):
        GovernorConfig.from_env(bogus_option=1)


def test_config_rejects_bad_env(monkeypatch):
    monkeypatch.setenv(BATCH_SIZE_ENV, "zero")
    with pytest.raises(ValueError):
        GovernorConfig.from_env()
    monkeypatch.setenv(BATCH_SIZE_ENV, "0")
    with pytest.raises(ValueError):
        GovernorConfig.from_env()
