"""docs/gateway.md renders the real route table — keep them in lockstep."""

from __future__ import annotations

from pathlib import Path

from repro.gateway import route_table, schema_catalog
from repro.gateway.governor import BATCH_SIZE_ENV, QUEUE_DEPTH_ENV
from repro.gateway.routes import AUDIT_STREAM_PATTERN
from repro.gateway.schemas import schema_markdown

DOC = Path(__file__).resolve().parents[2] / "docs" / "gateway.md"


def test_every_route_is_documented():
    text = DOC.read_text()
    for route in route_table():
        assert route.pattern in text, f"{route.pattern} missing from docs/gateway.md"
        assert route.doc in text, f"doc line for {route.name} missing from docs/gateway.md"
    assert AUDIT_STREAM_PATTERN in text


def test_doc_names_the_admission_knobs():
    text = DOC.read_text()
    for env in (BATCH_SIZE_ENV, QUEUE_DEPTH_ENV):
        assert env in text


def test_schema_markdown_renders_for_every_schema():
    # The per-field reference the doc points readers at must actually render.
    for name, schema in schema_catalog().items():
        rendered = schema_markdown(schema)
        assert rendered.startswith(f"### `{name}`")
        assert "|" in rendered  # the field table
