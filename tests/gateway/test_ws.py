"""The WebSocket audit stream: status events and the audit-report push."""

from __future__ import annotations

import threading

from repro.gateway.client import CastingSession
from repro.gateway.http import websocket_accept_value


def test_accept_value_matches_rfc6455_example():
    # The worked example from RFC 6455 section 1.3.
    assert (
        websocket_accept_value("dGhlIHNhbXBsZSBub25jZQ==")
        == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
    )


def test_audit_stream_delivers_status_and_report(gateway):
    client = gateway.client(client_id="ws")
    client.create_election("ws-demo", 4, 2)
    session = CastingSession(client, "ws-demo")
    session.refresh()
    credential = session.register("voter-0000").credentials[0]
    session.cast([(credential, 1)])

    events = []
    got_report = threading.Event()

    def subscriber() -> None:
        stream_client = gateway.client(client_id="ws-sub")
        for event in stream_client.audit_stream("ws-demo"):
            events.append(event)
            if event.event == "audit-report":
                got_report.set()
                return

    thread = threading.Thread(target=subscriber, daemon=True)
    thread.start()

    client.close_election("ws-demo")
    client.tally("ws-demo")
    report = client.audit_report("ws-demo")

    assert got_report.wait(timeout=60), f"no audit-report event; saw {events}"
    thread.join(timeout=10)

    kinds = [event.event for event in events]
    assert kinds[0] == "status"  # the snapshot pushed on subscribe
    assert "audit-report" in kinds
    statuses = [event.status for event in events if event.event == "status"]
    assert statuses[0] in ("open", "closed", "tallied")

    pushed = events[-1]
    assert pushed.report is not None
    assert pushed.report.fingerprint == report.fingerprint
    assert pushed.report.ok == report.ok
    client.close()


def test_audit_stream_unknown_election_rejected(gateway):
    import pytest

    from repro.errors import GatewayError

    client = gateway.client()
    with pytest.raises(GatewayError):
        for _ in client.audit_stream("missing"):
            break
    client.close()
