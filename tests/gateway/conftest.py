"""Fixtures for the gateway suite: a live server on an ephemeral port.

The server runs on its own event loop in a background thread, so tests can
drive it with the blocking :class:`repro.gateway.client.GatewayClient` —
exactly how a real client would.  ``gateway.run(coro)`` gives tests direct
(thread-safe) access to the service's async API for white-box assertions.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.gateway.client import GatewayClient
from repro.gateway.governor import GovernorConfig
from repro.gateway.routes import GatewayServer
from repro.gateway.service import GatewayService, ServiceConfig


class GatewayFixture:
    """A running gateway: service + server + a loop thread to drive them."""

    def __init__(self, config: ServiceConfig) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run_loop, daemon=True)
        self.thread.start()
        self.service = GatewayService(config)
        self.server = GatewayServer(self.service)
        self.run(self.server.start())

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def run(self, coro, timeout: float = 120.0):
        """Run a coroutine on the server's loop and wait for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, client_id: str = "") -> GatewayClient:
        return GatewayClient(port=self.port, client_id=client_id)

    def close(self) -> None:
        self.run(self.server.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


@pytest.fixture()
def gateway():
    """A gateway with test-friendly defaults (env-tunable batch geometry)."""
    fixture = GatewayFixture(ServiceConfig(governor=GovernorConfig.from_env()))
    yield fixture
    fixture.close()


@pytest.fixture()
def make_gateway():
    """Factory fixture for tests needing custom governor/board settings."""
    fixtures = []

    def factory(config: ServiceConfig) -> GatewayFixture:
        fixture = GatewayFixture(config)
        fixtures.append(fixture)
        return fixture

    yield factory
    for fixture in fixtures:
        fixture.close()
