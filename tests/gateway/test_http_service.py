"""End-to-end elections over HTTP only, plus the ledger bit-identity proof."""

from __future__ import annotations

import threading

import pytest

from repro.gateway.client import GatewayClient, GatewayClientError, RateLimited
from repro.gateway.governor import GovernorConfig
from repro.gateway.schemas import ballot_from_wire, ballot_to_wire
from repro.gateway.service import ServiceConfig
from repro.ledger.bulletin_board import BulletinBoard


def test_full_election_over_http_only(gateway):
    """Register, cast, close, tally and audit an election through the SDK."""
    from repro.gateway.client import CastingSession

    client = gateway.client(client_id="e2e")
    info = client.create_election("http-e2e", 6, 3)
    assert info.status == "open"
    assert info.group == "toy"

    session = CastingSession(client, "http-e2e")
    session.refresh()
    voters = [f"voter-{index:04d}" for index in range(4)]
    for voter_id in voters:
        response = session.register(voter_id)
        assert response.voter_id == voter_id
        real = [credential for credential in response.credentials if credential.is_real]
        fakes = [credential for credential in response.credentials if not credential.is_real]
        assert len(real) == 1
        assert len(fakes) >= 1

    choices = {voters[0]: 2, voters[1]: 1, voters[2]: 2, voters[3]: 2}
    cast = session.cast([(session.real_credential(v), c) for v, c in choices.items()])
    assert cast.ledger_seqs == sorted(cast.ledger_seqs)
    assert len(cast.ledger_seqs) == 4

    info = client.info("http-e2e")
    assert info.num_registered == 4

    closed = client.close_election("http-e2e")
    assert closed.status == "closed"
    assert closed.num_ballots == 4
    assert closed.pending_casts == 0

    tally = client.tally("http-e2e")
    assert tally.counts == {"0": 0, "1": 1, "2": 3}
    assert tally.winner == 2
    assert tally.num_discarded == 0

    report = client.audit_report("http-e2e")
    assert report.ok
    assert report.num_failed == 0
    assert len(report.fingerprint) == 64
    # Cached: a second read returns the identical fingerprint.
    assert client.audit_report("http-e2e").fingerprint == report.fingerprint

    assert client.info("http-e2e").status == "tallied"
    client.close()


def test_concurrent_http_casts_match_in_process_chain(gateway, group):
    """The HTTP-admitted ballot chain is byte-identical to in-process appends.

    Multiple client threads cast concurrently through the micro-batching
    admitter; replaying the ledger's records in ledger order through a plain
    in-process board must produce the same hash chain head.
    """
    from repro.gateway.client import CastingSession

    client = gateway.client(client_id="main")
    client.create_election("identity", 12, 2)
    session = CastingSession(client, "identity")
    session.refresh()
    credentials = [session.register(f"voter-{i:04d}").credentials[0] for i in range(8)]
    wires = [session.make_ballot_wire(credential, i % 2) for i, credential in enumerate(credentials)]

    errors = []

    def cast_worker(worker_index: int) -> None:
        worker = GatewayClient(port=gateway.port, client_id=f"worker-{worker_index}")
        try:
            chunk = wires[worker_index * 2 : worker_index * 2 + 2]
            worker.cast_ballots("identity", chunk)
        except Exception as error:  # surfaced below; pytest needs the main thread
            errors.append(error)
        finally:
            worker.close()

    threads = [threading.Thread(target=cast_worker, args=(index,)) for index in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []

    client.close_election("identity")

    tenant = gateway.service.tenants["identity"]
    http_board = tenant.setup.board
    assert http_board.num_ballots == 8

    # Replay the HTTP-admitted records, in ledger order, through a fresh
    # in-process board: the chains must match byte for byte.
    records = http_board.ballots("identity")
    replay_board = BulletinBoard()
    replay_board.post_ballots(records)
    http_head = http_board.ballot_log.head()
    replay_head = replay_board.ballot_log.head()
    assert http_head.head_hash == replay_head.head_hash
    assert http_head.size == replay_head.size

    # And the wire encoding itself is lossless: decode(encode(record)) is
    # the identical record, so the wire hop cannot have changed payloads.
    for record in records:
        assert ballot_from_wire(group, ballot_to_wire(record)) == record
    client.close()


def test_error_mapping_404_405_400_409(gateway):
    client = gateway.client()
    with pytest.raises(GatewayClientError) as excinfo:
        client.info("missing")
    assert excinfo.value.status == 404

    status, _ = client._raw_request("GET", "/healthz", None)
    assert status == 200
    with pytest.raises(GatewayClientError) as excinfo:
        client._raw_request("DELETE", "/healthz", None)
    assert excinfo.value.status == 405
    with pytest.raises(GatewayClientError) as excinfo:
        client._raw_request("GET", "/nope", None)
    assert excinfo.value.status == 404

    client.create_election("errors", 2, 2)
    with pytest.raises(GatewayClientError) as excinfo:
        client.create_election("errors", 2, 2)
    assert excinfo.value.status == 409

    with pytest.raises(GatewayClientError) as excinfo:
        client.register("errors", "nobody-on-the-roll")
    assert excinfo.value.status == 400
    assert "voter_id" in excinfo.value.field_errors

    # Tallying an open election is a status conflict.
    with pytest.raises(GatewayClientError) as excinfo:
        client.tally("errors")
    assert excinfo.value.status == 409
    client.close()


def test_validation_errors_carry_field_paths(gateway):
    client = gateway.client()
    client.create_election("fields", 2, 2)
    import json

    from repro.gateway.schemas import CastRequest

    class RawBody:
        def __init__(self, payload: str) -> None:
            self._payload = payload

        def to_json(self) -> str:
            return self._payload

    bad = json.dumps({"ballots": [{"credential_public_key": "zz"}]})
    with pytest.raises(GatewayClientError) as excinfo:
        client._raw_request("POST", "/v1/elections/fields/ballots", RawBody(bad))
    assert excinfo.value.status == 400
    assert "ballots[0].credential_public_key" in excinfo.value.field_errors
    assert "ballots[0].ciphertext_c1" in excinfo.value.field_errors
    assert CastRequest  # imported to show intent: the server validated CastRequest
    client.close()


def test_burst_casting_sheds_with_retry_after(make_gateway, group):
    """A burst beyond the client bucket gets 429 + a positive Retry-After."""
    from repro.gateway.client import CastingSession

    fixture = make_gateway(
        ServiceConfig(
            governor=GovernorConfig(
                tenant_rate=1e9,
                tenant_burst=1e9,
                client_rate=1.0,
                client_burst=4.0,
                batch_size=4,
            )
        )
    )
    client = fixture.client(client_id="bursty")
    client.create_election("shed", 8, 2)
    session = CastingSession(client, "shed")
    session.refresh()
    credentials = [session.register(f"voter-{i:04d}").credentials[0] for i in range(6)]
    wires = [session.make_ballot_wire(credential, 0) for credential in credentials]

    accepted = 0
    shed = None
    for wire in wires:
        try:
            client.cast_ballots("shed", [wire])
            accepted += 1
        except RateLimited as error:
            shed = error
            break
    assert accepted == 4
    assert shed is not None
    assert shed.status == 429
    assert shed.retry_after_seconds > 0.0
    # The governor counted what it shed.
    _, admitted, shed_count = fixture.service.tenants["shed"].governor.snapshot()
    assert admitted == 4
    assert shed_count >= 1
    client.close()


def test_casting_on_closed_election_conflicts(gateway):
    from repro.gateway.client import CastingSession

    client = gateway.client()
    client.create_election("closed-cast", 2, 2)
    session = CastingSession(client, "closed-cast")
    session.refresh()
    credential = session.register("voter-0000").credentials[0]
    wire = session.make_ballot_wire(credential, 1)
    client.close_election("closed-cast")
    with pytest.raises(GatewayClientError) as excinfo:
        client.cast_ballots("closed-cast", [wire])
    assert excinfo.value.status == 409
    client.close()


def test_metrics_exposes_gateway_series(gateway):
    import repro.telemetry as telemetry

    telemetry.configure("mem")
    client = gateway.client()
    client.create_election("metrics", 2, 2)
    text = client.metrics()
    assert "gateway" in text
    client.close()
