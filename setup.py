"""Compatibility shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``.  Modern PEP 660 editable installs
need ``wheel`` at build time; hermetic containers that lack it can fall back
to the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
